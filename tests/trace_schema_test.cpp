// Acceptance check for the observability tentpole: a full R2c2Sim run with
// tracing ON (including a mid-run cable failure) must export Chrome
// trace-event JSON that a trace viewer will accept — every event has a
// valid phase, timestamps are monotone per tid (per rack node), and every
// Begin has a matching End. A minimal purpose-built parser walks the JSON;
// no external JSON dependency.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "sim/r2c2_sim.h"
#include "topology/topology.h"
#include "workload/generator.h"

namespace r2c2 {
namespace {

using sim::FaultScript;
using sim::R2c2Sim;
using sim::R2c2SimConfig;
using sim::RunMetrics;

struct ParsedEvent {
  char ph = '?';
  double ts = 0.0;   // microseconds
  long long tid = -1;
  std::string name;
};

// Minimal extractor for the exporter's fixed one-event-per-line format.
// Returns events in file order (which is emission order).
std::vector<ParsedEvent> parse_events(const std::string& json) {
  std::vector<ParsedEvent> out;
  const std::string marker = "{\"name\": \"";
  for (std::size_t pos = json.find(marker); pos != std::string::npos;
       pos = json.find(marker, pos + 1)) {
    const std::size_t line_end = json.find('\n', pos);
    const std::string line = json.substr(pos, line_end - pos);
    ParsedEvent ev;
    const std::size_t name_end = line.find('"', marker.size());
    ev.name = line.substr(marker.size(), name_end - marker.size());
    const std::size_t ph = line.find("\"ph\": \"");
    if (ph != std::string::npos) ev.ph = line[ph + 7];
    const std::size_t ts = line.find("\"ts\": ");
    if (ts != std::string::npos) ev.ts = std::stod(line.substr(ts + 6));
    const std::size_t tid = line.find("\"tid\": ");
    if (tid != std::string::npos) ev.tid = std::stoll(line.substr(tid + 7));
    out.push_back(std::move(ev));
  }
  return out;
}

TEST(TraceSchema, FullSimRunExportsValidBalancedTrace) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);

  obs::FlightRecorder recorder;
  obs::MetricsRegistry registry;
  R2c2SimConfig cfg;
  cfg.trace = &recorder;
  cfg.metrics = &registry;
  cfg.reliable = true;
  cfg.keepalive_interval = 10 * kNsPerUs;
  cfg.lease_interval = 100 * kNsPerUs;
  cfg.rto = 200 * kNsPerUs;
  const LinkId victim = topo.find_link(0, 1);
  cfg.faults.events.push_back(FaultScript::fail_link(120 * kNsPerUs, victim));

  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 40;
  wl.mean_interarrival = 5 * kNsPerUs;
  wl.max_bytes = 96 * 1024;
  wl.seed = 21;

  R2c2Sim simulator(topo, router, cfg);
  simulator.add_flows(generate_poisson_uniform(wl));
  const RunMetrics m = simulator.run();
  ASSERT_EQ(m.flows.size(), 40u);
  for (const auto& f : m.flows) ASSERT_TRUE(f.finished()) << f.id;

  const std::string json = to_chrome_trace_json(recorder);

#if R2C2_TRACING_ENABLED
  // --- The run actually traced: every subsystem left events behind. ---
  ASSERT_FALSE(recorder.empty());
  const std::vector<ParsedEvent> events = parse_events(json);
  ASSERT_GE(events.size(), 80u);  // 40 starts + 40 finishes at minimum

  std::unordered_map<long long, double> last_ts;      // per-tid monotonicity
  std::unordered_map<long long, long long> depth;     // per-tid B/E balance
  bool saw_flow_start = false, saw_flow_finish = false, saw_recompute = false;
  bool saw_fault = false;
  for (const ParsedEvent& ev : events) {
    // Valid phase, node attribution in range.
    ASSERT_TRUE(ev.ph == 'B' || ev.ph == 'E' || ev.ph == 'i') << ev.ph;
    ASSERT_GE(ev.tid, 0);
    ASSERT_LT(ev.tid, topo.num_nodes());
    // Monotone (non-decreasing) timestamps per tid.
    const auto it = last_ts.find(ev.tid);
    if (it != last_ts.end()) {
      ASSERT_GE(ev.ts, it->second) << "tid " << ev.tid << " went backwards at " << ev.name;
    }
    last_ts[ev.tid] = ev.ts;
    // Balanced spans: depth never goes negative.
    if (ev.ph == 'B') ++depth[ev.tid];
    if (ev.ph == 'E') {
      --depth[ev.tid];
      ASSERT_GE(depth[ev.tid], 0) << "unmatched End on tid " << ev.tid;
    }
    saw_flow_start |= ev.name == "flow_start";
    saw_flow_finish |= ev.name == "flow_finish";
    saw_recompute |= ev.name == "rate_recompute";
    saw_fault |= ev.name == "fault_inject" || ev.name == "fault_detect" ||
                 ev.name == "fault_rebuild";
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "dangling Begin on tid " << tid;
  }
  EXPECT_TRUE(saw_flow_start);
  EXPECT_TRUE(saw_flow_finish);
  EXPECT_TRUE(saw_recompute);
  EXPECT_TRUE(saw_fault);

  // The shared registry observed the same run.
  ASSERT_NE(registry.find_counter("r2c2.flows_started"), nullptr);
  EXPECT_EQ(registry.find_counter("r2c2.flows_started")->value(), 40u);
  EXPECT_EQ(registry.find_counter("r2c2.flows_finished")->value(), 40u);
  EXPECT_GT(registry.find_counter("r2c2.recomputations")->value(), 0u);
  ASSERT_NE(registry.find_histogram("r2c2.recompute_wall_ns"), nullptr);
  EXPECT_GT(registry.find_histogram("r2c2.recompute_wall_ns")->count(), 0u);
#else
  // --- Compiled out (-DR2C2_TRACING=OFF): the recorder stays untouched ---
  // even though it was attached, and the export is a valid empty envelope.
  EXPECT_TRUE(recorder.empty());
  EXPECT_EQ(parse_events(json).size(), 0u);
#endif

  // The envelope itself is always present (what CI uploads as an artifact).
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"events_overwritten\""), std::string::npos);

  // write_chrome_trace() round-trips the same bytes to disk.
  const std::string path = ::testing::TempDir() + "r2c2_trace_schema_test.json";
  ASSERT_TRUE(write_chrome_trace(recorder, path));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string disk;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) disk.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(disk, json);
}

TEST(TraceSchema, SmallRingStillExportsBalancedSpans) {
  // Force heavy wraparound: a tiny ring attached to a real run. Orphaned
  // Ends must be dropped and dangling Begins closed, so the export stays
  // viewer-loadable even when most of the run was overwritten.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  obs::FlightRecorder recorder(64);
  R2c2SimConfig cfg;
  cfg.trace = &recorder;

  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 60;
  wl.mean_interarrival = 3 * kNsPerUs;
  wl.max_bytes = 64 * 1024;
  wl.seed = 5;

  R2c2Sim simulator(topo, router, cfg);
  simulator.add_flows(generate_poisson_uniform(wl));
  simulator.run();

#if R2C2_TRACING_ENABLED
  EXPECT_EQ(recorder.size(), recorder.capacity());
  EXPECT_GT(recorder.overwritten(), 0u);
  const std::vector<ParsedEvent> events = parse_events(to_chrome_trace_json(recorder));
  std::unordered_map<long long, long long> depth;
  for (const ParsedEvent& ev : events) {
    if (ev.ph == 'B') ++depth[ev.tid];
    if (ev.ph == 'E') {
      --depth[ev.tid];
      ASSERT_GE(depth[ev.tid], 0);
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << tid;
#else
  EXPECT_TRUE(recorder.empty());
#endif
}

TEST(TraceSchema, ShardedRunMergesLaneTracesIdenticallyAcrossWorkerCounts) {
  // Regression: the recorder used to detach silently whenever the engine ran
  // with more than one worker (the ring is single-threaded). Sharded runs
  // now give each lane a private ring, merged (ts, lane, position)-ordered
  // at metrics collection — so a W=4 run keeps its full trace, and the
  // merged sequence is bit-identical to the same shard count at W=1.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);

  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 40;
  wl.mean_interarrival = 5 * kNsPerUs;
  wl.max_bytes = 96 * 1024;
  wl.seed = 21;

  auto run_traced = [&](int workers, obs::FlightRecorder& rec) {
    R2c2SimConfig cfg;
    cfg.trace = &rec;
    cfg.reliable = true;
    cfg.keepalive_interval = 10 * kNsPerUs;
    cfg.lease_interval = 100 * kNsPerUs;
    cfg.rto = 200 * kNsPerUs;
    cfg.engine_shards = 4;
    cfg.engine_workers = workers;
    const LinkId victim = topo.find_link(0, 1);
    cfg.faults.events.push_back(FaultScript::fail_link(120 * kNsPerUs, victim));
    R2c2Sim simulator(topo, router, cfg);
    simulator.add_flows(generate_poisson_uniform(wl));
    const RunMetrics m = simulator.run();
    for (const auto& f : m.flows) EXPECT_TRUE(f.finished()) << f.id;
  };

  obs::FlightRecorder rec_w1;
  obs::FlightRecorder rec_w4;
  run_traced(1, rec_w1);
  run_traced(4, rec_w4);

#if R2C2_TRACING_ENABLED
  ASSERT_FALSE(rec_w4.empty());
  const std::vector<obs::TraceEvent> a = rec_w1.snapshot();
  const std::vector<obs::TraceEvent> b = rec_w4.snapshot();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts) << i;
    EXPECT_EQ(a[i].node, b[i].node) << i;
    EXPECT_EQ(static_cast<int>(a[i].type), static_cast<int>(b[i].type)) << i;
    EXPECT_EQ(static_cast<int>(a[i].phase), static_cast<int>(b[i].phase)) << i;
    // Every span End carries the *wall-clock* cost of the scope in arg0
    // (ScopedTimer convention; see obs/scope.h) — real elapsed time,
    // legitimately different run to run. Everything else matches bit for
    // bit.
    if (a[i].phase != obs::EventPhase::kEnd) {
      EXPECT_EQ(a[i].arg0, b[i].arg0) << i;
    }
    EXPECT_EQ(a[i].arg1, b[i].arg1) << i;
  }

  // The merged trace still satisfies the viewer schema: valid phases,
  // in-range node attribution, monotone timestamps per tid, balanced spans.
  const std::vector<ParsedEvent> events = parse_events(to_chrome_trace_json(rec_w4));
  ASSERT_GE(events.size(), 80u);  // 40 starts + 40 finishes at minimum
  std::unordered_map<long long, double> last_ts;
  std::unordered_map<long long, long long> depth;
  bool saw_fault = false;
  for (const ParsedEvent& ev : events) {
    ASSERT_TRUE(ev.ph == 'B' || ev.ph == 'E' || ev.ph == 'i') << ev.ph;
    ASSERT_GE(ev.tid, 0);
    ASSERT_LT(ev.tid, topo.num_nodes());
    const auto it = last_ts.find(ev.tid);
    if (it != last_ts.end()) {
      ASSERT_GE(ev.ts, it->second) << ev.name;
    }
    last_ts[ev.tid] = ev.ts;
    if (ev.ph == 'B') ++depth[ev.tid];
    if (ev.ph == 'E') {
      --depth[ev.tid];
      ASSERT_GE(depth[ev.tid], 0);
    }
    saw_fault |= ev.name == "fault_inject" || ev.name == "fault_detect" ||
                 ev.name == "fault_rebuild";
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << tid;
  EXPECT_TRUE(saw_fault);
#else
  EXPECT_TRUE(rec_w4.empty());
#endif
}

}  // namespace
}  // namespace r2c2
