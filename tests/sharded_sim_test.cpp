// Full-stack determinism tests for the sharded parallel event engine.
//
// The contract under test: for a fixed shard count, the worker count is
// pure parallelism — digest trails, RunMetrics and snapshot archives are
// bit-identical at any worker count. The shard count itself is part of the
// trajectory and therefore of the config fingerprint.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "routing/routing.h"
#include "sim/r2c2_sim.h"
#include "snapshot/archive.h"
#include "snapshot/replay.h"
#include "topology/topology.h"

namespace r2c2 {
namespace {

snapshot::ReplayConfig sharded_config(int shards, int workers) {
  snapshot::ReplayConfig rc;
  rc.scenario = "fault";  // chaos faults + corruption + reliable transport
  rc.engine_shards = shards;
  rc.engine_workers = workers;
  return rc;
}

TEST(ShardedSim, WorkerCountIsBitInvisible) {
  snapshot::Scenario base(sharded_config(4, 1));
  const snapshot::ReplayResult want = base.run();
  ASSERT_FALSE(want.digests.points.empty());
  for (const int workers : {2, 4}) {
    snapshot::Scenario sc(sharded_config(4, workers));
    const snapshot::ReplayResult got = sc.run();
    EXPECT_EQ(snapshot::DigestLog::first_divergence(want.digests, got.digests), -1)
        << "digest trail diverged at " << workers << " workers";
    ASSERT_EQ(want.digests.points.size(), got.digests.points.size()) << workers;
    EXPECT_EQ(want.final_digest, got.final_digest) << workers;
    EXPECT_EQ(want.metrics_digest, got.metrics_digest) << workers;
  }
}

TEST(ShardedSim, SnapshotBytesIdenticalAcrossWorkerCounts) {
  const auto snap_at = [](int workers, TimeNs at) {
    snapshot::Scenario sc(sharded_config(4, workers));
    sc.simulator().run_until(at);
    snapshot::ArchiveWriter w;
    sc.simulator().save(w);
    return w.finish();
  };
  const std::vector<std::uint8_t> base = snap_at(1, 300 * kNsPerUs);
  EXPECT_EQ(base, snap_at(2, 300 * kNsPerUs));
  EXPECT_EQ(base, snap_at(4, 300 * kNsPerUs));
}

TEST(ShardedSim, ResumeUnderDifferentWorkerCount) {
  // Snapshot mid-run at 1 worker, resume at 4 workers: the resumed run
  // must land on the same final state and metrics as the straight run.
  snapshot::Scenario straight(sharded_config(4, 1));
  const snapshot::ReplayResult want = straight.run();

  snapshot::Scenario first(sharded_config(4, 1));
  first.simulator().run_until(200 * kNsPerUs);
  snapshot::ArchiveWriter w;
  first.simulator().save(w);
  std::vector<std::uint8_t> bytes = w.finish();

  snapshot::Scenario resumed(sharded_config(4, 4));
  snapshot::ArchiveReader r(std::move(bytes));
  resumed.simulator().load(r);
  const snapshot::ReplayResult got = resumed.run();
  EXPECT_EQ(want.final_digest, got.final_digest);
  EXPECT_EQ(want.metrics_digest, got.metrics_digest);
}

TEST(ShardedSim, ShardedRequiresPeriodicRecompute) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2SimConfig cfg;
  cfg.engine_shards = 2;
  cfg.recompute_interval = 0;  // per-event recomputation is global-only
  EXPECT_THROW(sim::R2c2Sim(topo, router, cfg), std::logic_error);
}

TEST(ShardedSim, ShardCountEntersFingerprintWorkerCountDoesNot) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2SimConfig serial;
  sim::R2c2SimConfig sharded = serial;
  sharded.engine_shards = 4;
  sim::R2c2SimConfig sharded_mt = sharded;
  sharded_mt.engine_workers = 4;
  const sim::R2c2Sim a(topo, router, serial);
  const sim::R2c2Sim b(topo, router, sharded);
  const sim::R2c2Sim c(topo, router, sharded_mt);
  EXPECT_NE(a.config_fingerprint(), b.config_fingerprint());
  EXPECT_EQ(b.config_fingerprint(), c.config_fingerprint());
}

}  // namespace
}  // namespace r2c2
