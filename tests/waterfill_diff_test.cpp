// Differential testing of the CSR/scratch waterfill fast path against the
// straightforward reference implementation, plus the zero-allocation
// steady-state guarantee.
//
// The fast path reorganizes the computation (CSR rows, lazy residual
// materialization, event heap) but must produce the same rates: every
// scenario here runs both allocators and asserts the rate vectors match to
// 1e-6 relative tolerance.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "congestion/waterfill.h"
#include "routing/routing.h"
#include "topology/topology.h"

// --- Counting allocator ---------------------------------------------------
// Global operator new/delete overrides local to this test binary: the
// steady-state test asserts that repeated waterfill(problem, scratch, out)
// calls perform no heap allocation once warmed up.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
// The nothrow variants must be overridden too (libstdc++'s stable_sort
// temporary buffer uses them); otherwise the default nothrow new pairs
// with the free()-based deletes above — an alloc-dealloc mismatch.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  ++g_allocations;
  const std::size_t a = static_cast<std::size_t>(align);
  return std::aligned_alloc(a, (size + a - 1) / a * a);
}
void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t& t) noexcept {
  return ::operator new(size, align, t);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace r2c2 {
namespace {

constexpr RouteAlg kAllAlgs[] = {RouteAlg::kRps, RouteAlg::kDor, RouteAlg::kVlb, RouteAlg::kWlb,
                                 RouteAlg::kEcmp};

// Randomized flow sets covering the allocator's whole input space: mixed
// priorities and weights, finite / infinite / zero demands, every routing
// protocol, and degenerate src == dst flows.
std::vector<FlowSpec> random_flows(const Topology& topo, Rng& rng, int n) {
  std::vector<FlowSpec> flows;
  flows.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
    // ~5% degenerate src == dst flows (must get rate 0, not crash).
    f.dst = rng.bernoulli(0.05) ? f.src
                                : static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
    f.alg = kAllAlgs[rng.uniform_int(5)];
    f.weight = rng.bernoulli(0.03) ? 0.0 : rng.uniform(0.25, 4.0);
    f.priority = static_cast<std::uint8_t>(rng.uniform_int(3));
    if (rng.bernoulli(0.3)) {
      f.demand = rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.1, 12.0) * kGbps;
    } else {
      f.demand = kUnlimitedDemand;
    }
    flows.push_back(f);
  }
  return flows;
}

void expect_rates_match(const std::vector<Bps>& fast, const std::vector<Bps>& ref,
                        const char* context) {
  ASSERT_EQ(fast.size(), ref.size()) << context;
  for (std::size_t i = 0; i < fast.size(); ++i) {
    // 1e-6 relative, with an absolute floor at the solver's saturation
    // band (kEps * bandwidth ~ 10 bps): rates are only defined to that
    // precision, and the reference's incremental residual charging vs the
    // fast path's lazy materialization round differently below it.
    const double tol = std::max(1e-6 * std::abs(ref[i]), 16.0);
    EXPECT_NEAR(fast[i], ref[i], tol) << context << " flow " << i;
  }
}

TEST(WaterfillDiff, RandomizedScenariosMatchReference) {
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  Rng rng(20260806);
  for (int round = 0; round < 30; ++round) {
    const int n = 1 + static_cast<int>(rng.uniform_int(120));
    const auto flows = random_flows(topo, rng, n);
    const AllocationConfig cfg{.headroom = rng.bernoulli(0.5) ? 0.05 : 0.0};
    const auto ref = waterfill_reference(router, flows, cfg);
    const auto fast = waterfill(router, flows, cfg);
    expect_rates_match(fast.rate, ref.rate,
                       ("round " + std::to_string(round)).c_str());
  }
}

TEST(WaterfillDiff, MeshAndTinyTopologiesMatchReference) {
  // Meshes (no wraparound) hit the forced-direction WLB/DOR paths; a
  // 2-node ring is the smallest multi-node case.
  Rng rng(99);
  for (const auto& topo : {make_mesh({3, 3}, 5 * kGbps, 100), make_torus({2}, kGbps, 100)}) {
    const Router router(topo);
    for (int round = 0; round < 10; ++round) {
      const auto flows = random_flows(topo, rng, 40);
      const auto ref = waterfill_reference(router, flows, {});
      const auto fast = waterfill(router, flows, {});
      expect_rates_match(fast.rate, ref.rate, "mesh/tiny");
    }
  }
}

TEST(WaterfillDiff, PriorityClassesAndDemandsMatchReference) {
  // Stress the per-class residual carryover: many priority levels, all
  // demand-limited high classes.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  Rng rng(7);
  std::vector<FlowSpec> flows;
  for (int i = 0; i < 64; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
    f.dst = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
    f.alg = RouteAlg::kRps;
    f.weight = 0.5 + static_cast<double>(i % 4);
    f.priority = static_cast<std::uint8_t>(i % 6);
    f.demand = (i % 3 == 0) ? rng.uniform(0.05, 2.0) * kGbps : kUnlimitedDemand;
    flows.push_back(f);
  }
  const auto ref = waterfill_reference(router, flows, {.headroom = 0.05});
  const auto fast = waterfill(router, flows, {.headroom = 0.05});
  expect_rates_match(fast.rate, ref.rate, "priorities");
}

TEST(WaterfillDiff, ChoiceVariantsMatchPerFlowRebuild) {
  // build_with_choices + set_choice must equal building the problem from
  // specs whose .alg was edited to the same assignment.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  Rng rng(21);
  auto flows = random_flows(topo, rng, 50);
  const RouteAlg choices[] = {RouteAlg::kRps, RouteAlg::kVlb, RouteAlg::kDor};

  WaterfillProblem problem;
  problem.build_with_choices(router, flows, choices, {});
  WaterfillScratch scratch;
  RateAllocation out;
  for (int round = 0; round < 8; ++round) {
    std::vector<FlowSpec> adjusted = flows;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const std::size_t c = rng.uniform_int(3);
      problem.set_choice(i, c);
      adjusted[i].alg = choices[c];
    }
    waterfill(problem, scratch, out);
    const auto ref = waterfill_reference(router, adjusted, {});
    expect_rates_match(out.rate, ref.rate, "choices");
  }
}

TEST(WaterfillDiff, ChoiceDeltaMatchesFullSelection) {
  // apply_choice_delta (the GA lanes' Hamming-delta move) must land the
  // problem in exactly the state a full per-flow set_choice pass reaches:
  // bit-identical rates, and only the differing genes flipped.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  Rng rng(77);
  const auto flows = random_flows(topo, rng, 50);
  const RouteAlg choices[] = {RouteAlg::kRps, RouteAlg::kVlb, RouteAlg::kDor};

  WaterfillProblem delta_problem, full_problem;
  delta_problem.build_with_choices(router, flows, choices, {});
  full_problem.build_with_choices(router, flows, choices, {});
  WaterfillScratch s1, s2;
  RateAllocation via_delta, via_full;

  std::vector<std::uint8_t> prev(flows.size(), 0);  // build selects choice 0
  for (int round = 0; round < 8; ++round) {
    std::vector<std::uint8_t> next = prev;
    // Mutate a handful of genes (round 0: none — the zero-delta case).
    for (int m = 0; m < round; ++m) {
      next[rng.uniform_int(next.size())] = static_cast<std::uint8_t>(rng.uniform_int(3));
    }
    std::size_t expected_changed = 0;
    for (std::size_t i = 0; i < next.size(); ++i) {
      if (prev[i] != next[i]) ++expected_changed;
    }
    EXPECT_EQ(delta_problem.apply_choice_delta(prev, next), expected_changed);
    for (std::size_t i = 0; i < next.size(); ++i) {
      full_problem.set_choice(i, next[i]);
      EXPECT_EQ(delta_problem.selected_choice(i), next[i]);
    }
    waterfill(delta_problem, s1, via_delta);
    waterfill(full_problem, s2, via_full);
    ASSERT_EQ(via_delta.rate.size(), via_full.rate.size());
    for (std::size_t j = 0; j < via_delta.rate.size(); ++j) {
      EXPECT_EQ(via_delta.rate[j], via_full.rate[j]) << "round " << round << ", flow " << j;
    }
    prev = std::move(next);
  }
}

TEST(WaterfillDiff, ScratchReuseIsDeterministic) {
  // Re-solving the same problem with the same (dirty) scratch must be
  // bit-identical, and a fresh scratch must agree too: the scratch carries
  // no problem state between calls.
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  Rng rng(5);
  const auto flows = random_flows(topo, rng, 80);
  WaterfillProblem problem;
  problem.build(router, flows, {.headroom = 0.05});

  WaterfillScratch reused;
  RateAllocation first;
  waterfill(problem, reused, first);
  for (int i = 0; i < 5; ++i) {
    RateAllocation again;
    waterfill(problem, reused, again);
    ASSERT_EQ(again.rate.size(), first.rate.size());
    for (std::size_t j = 0; j < first.rate.size(); ++j) {
      EXPECT_EQ(again.rate[j], first.rate[j]) << "reused scratch, flow " << j;
    }
  }
  WaterfillScratch fresh;
  RateAllocation other;
  waterfill(problem, fresh, other);
  for (std::size_t j = 0; j < first.rate.size(); ++j) {
    EXPECT_EQ(other.rate[j], first.rate[j]) << "fresh scratch, flow " << j;
  }
}

TEST(WaterfillDiff, SteadyStateAllocatesNothing) {
  const Topology topo = make_torus({8, 8, 8}, 10 * kGbps, 100);
  const Router router(topo);
  Rng rng(11);
  const auto flows = random_flows(topo, rng, 300);
  WaterfillProblem problem;
  problem.build(router, flows, {.headroom = 0.05});  // also warms the router cache
  WaterfillScratch scratch;
  RateAllocation out;
  waterfill(problem, scratch, out);  // warm-up sizes every scratch vector

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 20; ++i) waterfill(problem, scratch, out);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u) << "waterfill allocated in steady state";

  // Rebuilding the same problem (the periodic-recompute path when the flow
  // set changed shape but not size) must also reuse capacity.
  const std::uint64_t before_rebuild = g_allocations.load();
  for (int i = 0; i < 5; ++i) {
    problem.build(router, flows, {.headroom = 0.05});
    waterfill(problem, scratch, out);
  }
  const std::uint64_t after_rebuild = g_allocations.load();
  EXPECT_EQ(after_rebuild - before_rebuild, 0u) << "problem rebuild allocated";
}

}  // namespace
}  // namespace r2c2
