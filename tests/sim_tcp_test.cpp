#include <gtest/gtest.h>

#include "common/stats.h"
#include "sim/tcp_sim.h"

namespace r2c2::sim {
namespace {

std::vector<FlowArrival> single_flow(NodeId src, NodeId dst, std::uint64_t bytes,
                                     TimeNs start = 0) {
  FlowArrival f;
  f.start = start;
  f.src = src;
  f.dst = dst;
  f.bytes = bytes;
  return {f};
}

TEST(TcpSim, SingleFlowCompletes) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  TcpSim sim(topo, router, {});
  sim.add_flows(single_flow(0, 5, 1 << 20));
  const RunMetrics m = sim.run();
  ASSERT_EQ(m.flows.size(), 1u);
  ASSERT_TRUE(m.flows[0].finished());
  // Single ECMP path: can never beat one link's rate.
  EXPECT_LE(m.flows[0].throughput_bps(), 10.1e9);
  EXPECT_GT(m.flows[0].throughput_bps(), 1e9);  // slow start converges quickly at 2 us RTT
}

TEST(TcpSim, AllFlowsEventuallyComplete) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  TcpSim sim(topo, router, {});
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 100;
  wl.mean_interarrival = 10 * kNsPerUs;
  wl.max_bytes = 256 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const RunMetrics m = sim.run();
  for (const FlowRecord& f : m.flows) EXPECT_TRUE(f.finished()) << "flow " << f.id;
}

TEST(TcpSim, RecoversFromDrops) {
  // A tiny 6 KB buffer forces drops under incast; TCP must still deliver.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  TcpSimConfig cfg;
  cfg.net.data_buffer_bytes = 6 * 1024;
  TcpSim sim(topo, router, cfg);
  std::vector<FlowArrival> flows;
  for (NodeId s : {1, 2, 3, 4, 6, 7}) {
    FlowArrival f;
    f.src = s;
    f.dst = 5;
    f.bytes = 512 * 1024;
    flows.push_back(f);
  }
  sim.add_flows(flows);
  const RunMetrics m = sim.run();
  EXPECT_GT(m.drops, 0u);
  EXPECT_GT(sim.retransmissions(), 0u);
  for (const FlowRecord& f : m.flows) EXPECT_TRUE(f.finished()) << "flow " << f.id;
}

TEST(TcpSim, FairishSharingOnSharedBottleneck) {
  const Topology topo = make_torus({8}, 10 * kGbps, 100);
  const Router router(topo);
  TcpSim sim(topo, router, {});
  // Both flows traverse the 0->1->2 direction (single shortest path on a
  // ring segment): they share link 1->2.
  std::vector<FlowArrival> flows;
  flows.push_back(single_flow(0, 2, 8 << 20)[0]);
  flows.push_back(single_flow(1, 2, 8 << 20)[0]);
  sim.add_flows(flows);
  const RunMetrics m = sim.run();
  ASSERT_TRUE(m.flows[0].finished() && m.flows[1].finished());
  const double ratio = m.flows[0].throughput_bps() / m.flows[1].throughput_bps();
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 2.5);
}

TEST(TcpSim, ShortFlowsSufferBehindLongOnes) {
  // The Fig. 10 mechanism: a short flow sharing a drop-tail queue with a
  // bulk flow sees inflated FCT versus running alone.
  const Topology topo = make_torus({8}, 10 * kGbps, 100);
  const Router router(topo);
  // The probes share the bulk flow's path (the single shortest 0->1->2
  // route on the ring) and therefore its drop-tail queues. AIMD makes the
  // queue oscillate, so sample several probe times and compare the worst
  // case against an uncontended probe.
  const auto short_fcts = [&](bool with_background) {
    TcpSim sim(topo, router, {});
    std::vector<FlowArrival> flows;
    if (with_background) flows.push_back(single_flow(0, 2, 16 << 20)[0]);
    const std::size_t first_probe = flows.size();
    for (int i = 0; i < 5; ++i) {
      FlowArrival probe = single_flow(0, 2, 20 * 1024)[0];
      probe.start = (500 + 900 * i) * kNsPerUs;
      flows.push_back(probe);
    }
    sim.add_flows(flows);
    const RunMetrics m = sim.run();
    TimeNs worst = 0;
    for (std::size_t i = first_probe; i < m.flows.size(); ++i) {
      EXPECT_TRUE(m.flows[i].finished());
      worst = std::max(worst, m.flows[i].fct());
    }
    return worst;
  };
  EXPECT_GT(short_fcts(true), 2 * short_fcts(false));
}

TEST(TcpSim, SinglePathMeansNoReordering) {
  // With no drops (unbounded buffers), a single-path flow arrives strictly
  // in order. (With drop-tail buffers, retransmission holes would be
  // buffered and counted.)
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  TcpSimConfig cfg;
  cfg.net.data_buffer_bytes = 0;
  TcpSim sim(topo, router, cfg);
  sim.add_flows(single_flow(0, 9, 2 << 20));
  const RunMetrics m = sim.run();
  ASSERT_TRUE(m.flows[0].finished());
  EXPECT_EQ(m.flows[0].max_reorder_pkts, 0u);
}

TEST(TcpSim, QueuesFillUpUnlikeR2c2) {
  // TCP keeps drop-tail buffers full (no pacing): max occupancy reaches a
  // large fraction of the configured buffer.
  const Topology topo = make_torus({8}, 10 * kGbps, 100);
  const Router router(topo);
  TcpSimConfig cfg;
  cfg.net.data_buffer_bytes = 96 * 1024;
  TcpSim sim(topo, router, cfg);
  std::vector<FlowArrival> flows;
  flows.push_back(single_flow(0, 2, 8 << 20)[0]);
  flows.push_back(single_flow(1, 2, 8 << 20)[0]);
  sim.add_flows(flows);
  const RunMetrics m = sim.run();
  const auto max_q = *std::max_element(m.max_queue_bytes.begin(), m.max_queue_bytes.end());
  EXPECT_GT(max_q, 48u * 1024);
}

}  // namespace
}  // namespace r2c2::sim
