// Cross-module integration: the paper's headline qualitative results on a
// scaled-down rack, exercised end to end through the three simulated
// transports and the control plane.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "control/route_selection.h"
#include "sim/pfq_sim.h"
#include "sim/r2c2_sim.h"
#include "sim/tcp_sim.h"
#include "workload/generator.h"
#include "workload/patterns.h"

namespace r2c2 {
namespace {

using sim::PfqSim;
using sim::R2c2Sim;
using sim::RunMetrics;
using sim::TcpSim;

struct Suite {
  RunMetrics r2c2;
  RunMetrics tcp;
  RunMetrics pfq;
};

// One shared workload on a 64-node 3D torus, run through all transports.
Suite run_suite() {
  static const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  static const Router router(topo);
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 400;
  wl.mean_interarrival = 1 * kNsPerUs;
  wl.max_bytes = 1 << 20;
  wl.seed = 2025;
  const auto arrivals = generate_poisson_uniform(wl);

  Suite suite;
  {
    R2c2Sim sim(topo, router, {});
    sim.add_flows(arrivals);
    suite.r2c2 = sim.run();
  }
  {
    TcpSim sim(topo, router, {});
    sim.add_flows(arrivals);
    suite.tcp = sim.run();
  }
  {
    PfqSim sim(topo, router, {});
    sim.add_flows(arrivals);
    suite.pfq = sim.run();
  }
  return suite;
}

const Suite& suite() {
  static const Suite s = run_suite();
  return s;
}

TEST(Integration, EveryTransportDeliversEveryFlow) {
  for (const RunMetrics* m : {&suite().r2c2, &suite().tcp, &suite().pfq}) {
    ASSERT_EQ(m->flows.size(), 400u);
    for (const auto& f : m->flows) EXPECT_TRUE(f.finished()) << f.id;
  }
}

TEST(Integration, R2c2BeatsTcpOnShortFlowTails) {
  // Fig. 10 / Fig. 12: TCP's 99th-percentile short-flow FCT is a multiple
  // of R2C2's.
  const double r2c2_p99 = percentile(suite().r2c2.short_flow_fct_us(), 99);
  const double tcp_p99 = percentile(suite().tcp.short_flow_fct_us(), 99);
  EXPECT_GT(tcp_p99, 1.5 * r2c2_p99) << "tcp " << tcp_p99 << " r2c2 " << r2c2_p99;
}

TEST(Integration, R2c2TracksPfqOnShortFlows) {
  // Fig. 10: R2C2 closely matches the idealized per-flow-queues baseline
  // with a single queue per port.
  const double r2c2_p99 = percentile(suite().r2c2.short_flow_fct_us(), 99);
  const double pfq_p99 = percentile(suite().pfq.short_flow_fct_us(), 99);
  EXPECT_LT(r2c2_p99, 4.0 * pfq_p99);
}

TEST(Integration, R2c2BeatsTcpOnLongFlowThroughput) {
  // Fig. 11 / Fig. 13: multipath + rate control vs single path.
  const auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s / static_cast<double>(v.size());
  };
  EXPECT_GT(mean(suite().r2c2.long_flow_tput_gbps()),
            1.3 * mean(suite().tcp.long_flow_tput_gbps()));
}

TEST(Integration, R2c2QueuesFarBelowTcp) {
  // Fig. 14's mechanism: rate-based control keeps queues near-empty while
  // TCP fills drop-tail buffers.
  std::vector<double> rq(suite().r2c2.max_queue_bytes.begin(), suite().r2c2.max_queue_bytes.end());
  std::vector<double> tq(suite().tcp.max_queue_bytes.begin(), suite().tcp.max_queue_bytes.end());
  EXPECT_LT(percentile(rq, 99), percentile(tq, 99));
}

TEST(Integration, BroadcastOverheadSmallForByteHeavyWorkload) {
  // Section 3.2: control bytes are a small fraction of data bytes when
  // most bytes come from non-tiny flows.
  const double frac = static_cast<double>(suite().r2c2.control_bytes_on_wire) /
                      static_cast<double>(suite().r2c2.data_bytes_on_wire);
  EXPECT_LT(frac, 0.05);
}

TEST(Integration, AdaptiveRoutingBeatsWorstSingleProtocol) {
  // Fig. 18's mechanism at small scale: for a low-load permutation, the
  // GA assignment's utility is at least max(all-RPS, all-VLB).
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  Rng rng(77);
  std::vector<FlowSpec> flows;
  FlowId id = 1;
  for (const auto& [s, d] : partial_permutation_pairs(topo, 0.25, rng)) {
    flows.push_back({id++, s, d, RouteAlg::kRps, 1.0, 0, kUnlimitedDemand});
  }
  SelectionConfig cfg;
  cfg.population = 30;
  cfg.max_generations = 12;
  const auto ga = select_routes_ga(router, flows, cfg);
  const auto rps = uniform_assignment(router, flows, RouteAlg::kRps, cfg);
  const auto vlb = uniform_assignment(router, flows, RouteAlg::kVlb, cfg);
  EXPECT_GE(ga.utility, std::max(rps.utility, vlb.utility) * 0.999);
}

}  // namespace
}  // namespace r2c2
