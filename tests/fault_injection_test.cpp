// Runtime fault injection and control-plane self-healing (Section 3.2 made
// dynamic): cables fail and splice back *while the simulation runs*; the
// nodes detect it via keepalive deadlines, rebuild topology/routes/trees,
// re-announce ongoing flows, and the lease protocol collects any view
// entries stranded by lost control packets.
#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "broadcast/broadcast.h"
#include "r2c2/stack.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "sim/r2c2_sim.h"
#include "topology/topology.h"
#include "workload/generator.h"

namespace r2c2 {
namespace {

using sim::ChaosConfig;
using sim::FaultScript;
using sim::R2c2Sim;
using sim::R2c2SimConfig;
using sim::RunMetrics;

R2c2SimConfig self_healing_config() {
  R2c2SimConfig cfg;
  cfg.reliable = true;  // in-flight packets die on a cut cable
  cfg.keepalive_interval = 10 * kNsPerUs;
  cfg.rebuild_delay = 20 * kNsPerUs;
  cfg.lease_interval = 100 * kNsPerUs;
  cfg.rto = 200 * kNsPerUs;
  return cfg;
}

std::vector<FlowArrival> mesh_workload(const Topology& topo, int flows, std::uint64_t seed) {
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = flows;
  wl.mean_interarrival = 5 * kNsPerUs;
  wl.max_bytes = 96 * 1024;
  wl.seed = seed;
  return generate_poisson_uniform(wl);
}

// --- FaultScript / chaos-mode generation ---

TEST(ChaosScript, IsDeterministicAndPaired) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  ChaosConfig cc;
  cc.waves = 6;
  Rng a(42), b(42);
  const FaultScript s1 = sim::make_chaos_script(topo, a, cc);
  const FaultScript s2 = sim::make_chaos_script(topo, b, cc);
  ASSERT_EQ(s1.events.size(), s2.events.size());
  for (std::size_t i = 0; i < s1.events.size(); ++i) {
    EXPECT_EQ(s1.events[i].at, s2.events[i].at);
    EXPECT_EQ(s1.events[i].kind, s2.events[i].kind);
    EXPECT_EQ(s1.events[i].link, s2.events[i].link);
  }
  // Every failure has a matching restore, and times are sorted.
  int fails = 0, restores = 0;
  for (std::size_t i = 0; i < s1.events.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(s1.events[i].at, s1.events[i - 1].at);
    }
    if (s1.events[i].is_failure()) {
      ++fails;
    } else {
      ++restores;
    }
  }
  EXPECT_EQ(fails, restores);
  EXPECT_GT(fails, 0);
}

TEST(ChaosScript, NeverDisconnectsTheRack) {
  // Replay the script over the live-cable graph and check connectivity
  // after every event (the generator connectivity-checks each cut).
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  Rng rng(7);
  ChaosConfig cc;
  cc.waves = 12;
  cc.fails_per_wave = 2;
  const FaultScript script = sim::make_chaos_script(topo, rng, cc);
  std::vector<char> down(topo.num_links(), 0);
  auto set_cable = [&](LinkId link, char v) {
    const Link& l = topo.link(link);
    down[link] = v;
    const LinkId rev = topo.find_link(l.to, l.from);
    if (rev != kInvalidLink) down[rev] = v;
  };
  auto connected = [&] {
    std::vector<char> seen(topo.num_nodes(), 0);
    std::vector<NodeId> stack{0};
    seen[0] = 1;
    std::size_t reached = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const LinkId id : topo.out_links(u)) {
        if (down[id]) continue;
        const NodeId v = topo.link(id).to;
        if (!seen[v]) {
          seen[v] = 1;
          ++reached;
          stack.push_back(v);
        }
      }
    }
    return reached == topo.num_nodes();
  };
  for (const sim::FaultEvent& ev : script.events) {
    set_cable(ev.link, ev.is_failure() ? 1 : 0);
    EXPECT_TRUE(connected()) << "at t=" << ev.at;
  }
}

// --- Tentpole: mid-run failure detected and recovered by the nodes ---

TEST(DynamicFailure, DetectedRebuiltAndAllFlowsComplete) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg = self_healing_config();
  const LinkId victim = topo.find_link(0, 1);
  // Cut a cable mid-run, while ~40 flows are in flight; never restore it.
  cfg.faults.events.push_back(FaultScript::fail_link(120 * kNsPerUs, victim));
  R2c2Sim simulator(topo, router, cfg);
  simulator.add_flows(mesh_workload(topo, 40, 21));
  const RunMetrics m = simulator.run();

  // The injector cut it; the *nodes* noticed and recovered on their own.
  EXPECT_EQ(m.failures_injected, 1u);
  ASSERT_GE(m.failures_detected, 1u);
  EXPECT_GE(m.context_rebuilds, 1u);
  EXPECT_GT(m.flows_rebroadcast, 0u);
  EXPECT_GT(m.failed_link_drops, 0u);  // something was in flight on the cable

  // Recovery episode timeline is coherent.
  ASSERT_FALSE(m.recoveries.empty());
  const sim::RecoveryRecord& rec = m.recoveries.front();
  EXPECT_TRUE(rec.failure);
  EXPECT_EQ(rec.injected_at, 120 * kNsPerUs);
  EXPECT_GT(rec.detected_at, rec.injected_at);
  EXPECT_LE(rec.detection_ns(), 8 * cfg.keepalive_interval);
  EXPECT_GE(rec.recovered_at, rec.detected_at);
  EXPECT_GE(rec.reconverged_at, rec.recovered_at);

  // Every in-flight flow survives the outage.
  ASSERT_EQ(m.flows.size(), 40u);
  for (const auto& f : m.flows) EXPECT_TRUE(f.finished()) << f.id;
  // And the control plane fully cleaned up after itself.
  EXPECT_TRUE(simulator.global_view().empty());
}

TEST(DynamicFailure, RestoreIsDetectedAndContextHealsBack) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg = self_healing_config();
  const LinkId victim = topo.find_link(5, 6);
  cfg.faults.events.push_back(FaultScript::fail_link(100 * kNsPerUs, victim));
  cfg.faults.events.push_back(FaultScript::restore_link(600 * kNsPerUs, victim));
  R2c2Sim simulator(topo, router, cfg);
  simulator.add_flows(mesh_workload(topo, 60, 5));
  const RunMetrics m = simulator.run();

  EXPECT_EQ(m.failures_injected, 1u);
  EXPECT_EQ(m.restores_injected, 1u);
  EXPECT_GE(m.failures_detected, 1u);
  EXPECT_GE(m.restores_detected, 1u);
  EXPECT_GE(m.context_rebuilds, 2u);  // degrade, then back to pristine
  bool saw_restore_episode = false;
  for (const auto& rec : m.recoveries) {
    if (!rec.failure) {
      saw_restore_episode = true;
      EXPECT_GE(rec.detected_at, 600 * kNsPerUs);
    }
  }
  EXPECT_TRUE(saw_restore_episode);
  for (const auto& f : m.flows) EXPECT_TRUE(f.finished()) << f.id;
  EXPECT_TRUE(simulator.global_view().empty());
  // After healing, the detection verdict matches ground truth again.
  EXPECT_FALSE(simulator.link_detected_down(victim));
}

TEST(DynamicFailure, WithoutFaultsBehavesAsBaseline) {
  // Enabling the machinery with an empty script must not change results:
  // keepalives ride the priority class and leases only refresh.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig plain;
  R2c2SimConfig armed = self_healing_config();
  armed.reliable = false;  // align with plain
  R2c2Sim a(topo, router, plain);
  R2c2Sim b(topo, router, armed);
  a.add_flows(mesh_workload(topo, 30, 9));
  b.add_flows(mesh_workload(topo, 30, 9));
  const RunMetrics ma = a.run();
  const RunMetrics mb = b.run();
  ASSERT_EQ(ma.flows.size(), mb.flows.size());
  for (std::size_t i = 0; i < ma.flows.size(); ++i) {
    EXPECT_TRUE(mb.flows[i].finished());
    // Identical FCTs are not guaranteed (keepalives share links), but
    // completion and ordering of the workload must hold.
    EXPECT_EQ(ma.flows[i].src, mb.flows[i].src);
    EXPECT_EQ(ma.flows[i].bytes, mb.flows[i].bytes);
  }
  EXPECT_EQ(mb.failures_detected, 0u);
  EXPECT_EQ(mb.context_rebuilds, 0u);
  EXPECT_EQ(mb.ghost_flows_expired, 0u);
}

// --- Chaos mode: randomized fail/restore waves + corruption ---

TEST(Chaos, InvariantsHoldAfterRepeatedFailRestoreWaves) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg = self_healing_config();
  cfg.net.corruption_rate = 5e-4;  // control-packet corruption too
  cfg.seed = 13;
  Rng chaos_rng(1234);
  ChaosConfig cc;
  cc.waves = 8;
  cc.start = 50 * kNsPerUs;
  // Dense waves so failures land while the 120-flow workload is in flight.
  cc.mean_wave_gap = 80 * kNsPerUs;
  cc.mean_down_time = 150 * kNsPerUs;
  cfg.faults = sim::make_chaos_script(topo, chaos_rng, cc);
  ASSERT_FALSE(cfg.faults.empty());

  R2c2Sim simulator(topo, router, cfg);
  simulator.add_flows(mesh_workload(topo, 120, 77));
  const RunMetrics m = simulator.run();

  EXPECT_EQ(m.failures_injected, 8u);
  EXPECT_GE(m.failures_detected, 1u);
  EXPECT_GE(m.context_rebuilds, 1u);
  // Invariants after the dust settles: every flow completed despite the
  // waves, and no ghost entry survived (view drained, keys released).
  for (const auto& f : m.flows) EXPECT_TRUE(f.finished()) << f.id;
  EXPECT_TRUE(simulator.global_view().empty());
}

TEST(Chaos, SameSeedReproducesTheRunExactly) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  auto once = [&] {
    R2c2SimConfig cfg = self_healing_config();
    cfg.net.corruption_rate = 5e-4;
    Rng chaos_rng(99);
    ChaosConfig cc;
    cc.waves = 5;
    cc.start = 40 * kNsPerUs;
    cfg.faults = sim::make_chaos_script(topo, chaos_rng, cc);
    R2c2Sim simulator(topo, router, cfg);
    simulator.add_flows(mesh_workload(topo, 60, 3));
    return simulator.run();
  };
  const RunMetrics m1 = once();
  const RunMetrics m2 = once();
  EXPECT_EQ(m1.sim_end, m2.sim_end);
  EXPECT_EQ(m1.events, m2.events);
  EXPECT_EQ(m1.failures_detected, m2.failures_detected);
  EXPECT_EQ(m1.context_rebuilds, m2.context_rebuilds);
  ASSERT_EQ(m1.flows.size(), m2.flows.size());
  for (std::size_t i = 0; i < m1.flows.size(); ++i) {
    EXPECT_EQ(m1.flows[i].completed, m2.flows[i].completed);
  }
}

// --- Satellite: corruption accounting split + no stranded entries ---

TEST(CorruptionSplit, ControlCorruptionCountedSeparatelyAndHealedByLeases) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg;
  cfg.reliable = true;
  cfg.net.corruption_rate = 2e-3;
  // Disable the drop-notice retransmission: a corrupted broadcast copy is
  // really lost, so only the lease protocol can heal the view.
  cfg.retransmit_dropped_control = false;
  cfg.lease_interval = 100 * kNsPerUs;
  cfg.rto = 200 * kNsPerUs;
  R2c2Sim simulator(topo, router, cfg);
  simulator.add_flows(mesh_workload(topo, 150, 31));
  const RunMetrics m = simulator.run();

  // Both classes got corrupted and are tracked separately.
  EXPECT_GT(m.corrupted_control, 0u);
  EXPECT_GT(m.corrupted_data, 0u);
  // Lost finish events used to strand entries forever; lease GC collects
  // them, so the run terminates with an empty view and all flows done.
  for (const auto& f : m.flows) EXPECT_TRUE(f.finished()) << f.id;
  EXPECT_TRUE(simulator.global_view().empty());
}

// --- Stack-level: per-node views reconverge, ghosts are collected ---

struct StackRack {
  Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  Router router{topo};
  BroadcastTrees trees{topo, 2};
  RackContext ctx;
  std::deque<std::pair<NodeId, std::vector<std::uint8_t>>> wire;
  std::vector<std::unique_ptr<R2c2Stack>> stacks;

  explicit StackRack(TimeNs lease_interval = 50 * kNsPerUs) {
    ctx.topo = &topo;
    ctx.router = &router;
    ctx.trees = &trees;
    ctx.lease_interval = lease_interval;
    ctx.lease_ttl = 4 * lease_interval;
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      R2c2Stack::Callbacks cb;
      cb.send_control = [this](NodeId next, std::vector<std::uint8_t> bytes) {
        wire.emplace_back(next, std::move(bytes));
      };
      stacks.push_back(std::make_unique<R2c2Stack>(n, ctx, std::move(cb)));
    }
  }

  // Drains the wire; `mangle` may drop (return false) or corrupt packets.
  template <typename F>
  void pump(F&& mangle) {
    while (!wire.empty()) {
      auto [node, bytes] = std::move(wire.front());
      wire.pop_front();
      if (!mangle(bytes)) continue;
      stacks[node]->on_control_packet(bytes);
    }
  }
  void pump() {
    pump([](std::vector<std::uint8_t>&) { return true; });
  }
  void tick_all(TimeNs now) {
    for (auto& s : stacks) s->tick(now);
  }
  std::size_t distinct_views() const {
    std::vector<std::uint64_t> hashes;
    for (const auto& s : stacks) hashes.push_back(s->view().view_hash());
    return sim::distinct_view_hashes(hashes);
  }
};

TEST(StackLease, LostFinishGhostIsCollectedEverywhere) {
  StackRack rack;
  const FlowId f = rack.stacks[0]->open_flow(10);
  rack.pump();
  for (const auto& s : rack.stacks) ASSERT_EQ(s->view().size(), 1u);

  // The finish broadcast is entirely lost: every other node keeps a ghost.
  rack.stacks[0]->close_flow(f);
  rack.wire.clear();
  ASSERT_EQ(rack.stacks[1]->view().size(), 1u);

  // Lease ticks advance; no refreshes arrive for the dead flow, so every
  // node's GC collects the ghost independently.
  for (TimeNs t = 50 * kNsPerUs; t <= 400 * kNsPerUs; t += 50 * kNsPerUs) {
    rack.tick_all(t);
    rack.pump();
  }
  std::uint64_t ghosts = 0;
  for (const auto& s : rack.stacks) {
    EXPECT_EQ(s->view().size(), 0u) << "node " << s->self();
    ghosts += s->ghosts_expired();
  }
  EXPECT_EQ(ghosts, rack.stacks.size() - 1);  // everyone but the closer
  EXPECT_EQ(rack.distinct_views(), 1u);
}

TEST(StackLease, LostStartIsResurrectedByRefresh) {
  StackRack rack;
  // The start broadcast is entirely lost.
  const FlowId f = rack.stacks[2]->open_flow(9);
  rack.wire.clear();
  for (NodeId n = 0; n < 16; ++n) {
    if (n != 2) {
      ASSERT_EQ(rack.stacks[n]->view().size(), 0u);
    }
  }
  // The first lease refresh re-advertises it; demand updates insert.
  rack.tick_all(50 * kNsPerUs);
  rack.pump();
  for (const auto& s : rack.stacks) EXPECT_EQ(s->view().size(), 1u);
  EXPECT_EQ(rack.distinct_views(), 1u);
  rack.stacks[2]->close_flow(f);
  rack.pump();
  EXPECT_EQ(rack.distinct_views(), 1u);
}

TEST(StackChaos, ViewsReconvergeAfterEveryLossyWave) {
  StackRack rack;
  Rng rng(2024);
  std::vector<std::pair<NodeId, FlowId>> open;
  TimeNs now = 0;
  const TimeNs step = 50 * kNsPerUs;

  for (int wave = 0; wave < 6; ++wave) {
    // Churn: open a few flows, close a few, while the wire is lossy and
    // corrupting (deterministically, from the seeded PRNG).
    for (int i = 0; i < 4; ++i) {
      const NodeId src = static_cast<NodeId>(rng.uniform_int(16));
      NodeId dst;
      do {
        dst = static_cast<NodeId>(rng.uniform_int(16));
      } while (dst == src);
      open.emplace_back(src, rack.stacks[src]->open_flow(dst));
    }
    for (int i = 0; i < 2 && !open.empty(); ++i) {
      const std::size_t pick = rng.uniform_int(open.size());
      const auto [node, flow] = open[pick];
      open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
      rack.stacks[node]->close_flow(flow);
    }
    rack.pump([&rng](std::vector<std::uint8_t>& bytes) {
      if (rng.bernoulli(0.15)) return false;  // dropped
      if (rng.bernoulli(0.05)) {              // corrupted: parse rejects
        bytes[rng.uniform_int(bytes.size())] ^= 0xff;
      }
      return true;
    });

    // Healing phase: enough clean lease cycles to refresh live flows and
    // GC any ghosts the wave created, then the invariants must hold.
    for (int cycle = 0; cycle < 6; ++cycle) {
      now += step;
      rack.tick_all(now);
      rack.pump();
    }
    EXPECT_EQ(rack.distinct_views(), 1u) << "wave " << wave;
    for (const auto& s : rack.stacks) {
      EXPECT_EQ(s->view().size(), open.size()) << "wave " << wave << " node " << s->self();
    }
  }

  // Drain everything and confirm the rack ends empty and agreed.
  for (const auto& [node, flow] : open) rack.stacks[node]->close_flow(flow);
  rack.pump();
  for (int cycle = 0; cycle < 6; ++cycle) {
    now += step;
    rack.tick_all(now);
    rack.pump();
  }
  for (const auto& s : rack.stacks) EXPECT_EQ(s->view().size(), 0u);
  EXPECT_EQ(rack.distinct_views(), 1u);
}

}  // namespace
}  // namespace r2c2
