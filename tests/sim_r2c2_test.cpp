#include <gtest/gtest.h>

#include <numeric>

#include "common/stats.h"
#include "sim/r2c2_sim.h"

namespace r2c2::sim {
namespace {

std::vector<FlowArrival> single_flow(NodeId src, NodeId dst, std::uint64_t bytes,
                                     TimeNs start = 0) {
  FlowArrival f;
  f.start = start;
  f.src = src;
  f.dst = dst;
  f.bytes = bytes;
  return {f};
}

TEST(R2c2Sim, SingleFlowAggregatesMultipathBandwidth) {
  // 0 -> 5 on a 4x4 torus has two link-disjoint shortest paths; RPS sprays
  // over both, so a lone flow legitimately exceeds a single link's rate —
  // the path-diversity benefit the paper contrasts with single-path TCP
  // (Section 5.2). Ceiling: 2 x 9.5 Gbps (headroom-reduced links).
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2Sim sim(topo, router, {});
  sim.add_flows(single_flow(0, 5, 1 << 20));
  const RunMetrics m = sim.run();
  ASSERT_EQ(m.flows.size(), 1u);
  ASSERT_TRUE(m.flows[0].finished());
  EXPECT_GT(m.flows[0].throughput_bps(), 1.5 * 9.5e9);
  EXPECT_LE(m.flows[0].throughput_bps(), 2.0 * 9.5e9 + 1e8);
}

TEST(R2c2Sim, SinglePathFlowCapsAtLineRate) {
  // With deterministic DOR routing the same flow is single-path and tops
  // out at the headroom-reduced link rate.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg;
  cfg.route_alg = RouteAlg::kDor;
  R2c2Sim sim(topo, router, cfg);
  sim.add_flows(single_flow(0, 5, 1 << 20));
  const RunMetrics m = sim.run();
  ASSERT_TRUE(m.flows[0].finished());
  EXPECT_GT(m.flows[0].throughput_bps(), 8.5e9);
  EXPECT_LE(m.flows[0].throughput_bps(), 9.6e9);
}

TEST(R2c2Sim, AllBytesDeliveredExactlyOnce) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2Sim sim(topo, router, {});
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 100;
  wl.mean_interarrival = 10 * kNsPerUs;
  wl.max_bytes = 256 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const RunMetrics m = sim.run();
  EXPECT_EQ(m.flows.size(), 100u);
  for (const FlowRecord& f : m.flows) {
    EXPECT_TRUE(f.finished()) << "flow " << f.id;
    EXPECT_GT(f.fct(), 0) << "flow " << f.id;
  }
  EXPECT_EQ(m.drops, 0u);
}

TEST(R2c2Sim, TwoCompetingFlowsShareFairly) {
  // Two flows over the same DOR path: each should get ~half the link.
  const Topology topo = make_torus({8}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg;
  cfg.route_alg = RouteAlg::kDor;
  cfg.recompute_interval = 50 * kNsPerUs;
  R2c2Sim sim(topo, router, cfg);
  std::vector<FlowArrival> flows;
  flows.push_back(single_flow(0, 2, 4 << 20)[0]);
  flows.push_back(single_flow(1, 3, 4 << 20)[0]);  // shares link 1->2
  sim.add_flows(flows);
  const RunMetrics m = sim.run();
  for (const FlowRecord& f : m.flows) {
    ASSERT_TRUE(f.finished());
    EXPECT_NEAR(f.throughput_bps(), 4.75e9, 0.8e9) << "flow " << f.id;
  }
}

TEST(R2c2Sim, WeightedFlowsSplitProportionally) {
  const Topology topo = make_torus({8}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg;
  cfg.route_alg = RouteAlg::kDor;
  cfg.recompute_interval = 50 * kNsPerUs;
  R2c2Sim sim(topo, router, cfg);
  FlowArrival heavy = single_flow(0, 2, 6 << 20)[0];
  heavy.weight = 2.0;
  FlowArrival light = single_flow(1, 3, 6 << 20)[0];
  sim.add_flows({heavy, light});
  const RunMetrics m = sim.run();
  // While both are active the split is 2:1. The lighter flow finishes
  // later; compare average assigned rates over the heavy flow's lifetime
  // via the recorded rate integrals: the heavy flow's average allocated
  // rate must clearly exceed the light one's.
  ASSERT_TRUE(m.flows[0].finished() && m.flows[1].finished());
  EXPECT_GT(m.flows[0].avg_assigned_rate_bps, 1.5 * m.flows[1].avg_assigned_rate_bps * 0.8);
  EXPECT_LT(m.flows[0].fct(), m.flows[1].fct());
}

TEST(R2c2Sim, PriorityFlowPreempts) {
  const Topology topo = make_torus({8}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg;
  cfg.route_alg = RouteAlg::kDor;
  cfg.recompute_interval = 20 * kNsPerUs;
  R2c2Sim sim(topo, router, cfg);
  FlowArrival background = single_flow(0, 2, 8 << 20)[0];
  background.priority = 1;
  FlowArrival urgent = single_flow(1, 3, 1 << 20)[0];
  urgent.priority = 0;
  urgent.start = 200 * kNsPerUs;  // arrives mid-transfer
  sim.add_flows({background, urgent});
  const RunMetrics m = sim.run();
  ASSERT_TRUE(m.flows[1].finished());
  // The urgent flow gets (nearly) the whole link despite the background
  // flow: FCT close to solo transfer time (1 MiB at 9.5 Gbps ~ 0.9 ms).
  EXPECT_LT(m.flows[1].fct(), static_cast<TimeNs>(1.4 * kNsPerMs));
}

TEST(R2c2Sim, BroadcastTrafficAccounted) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2Sim sim(topo, router, {});
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 50;
  wl.mean_interarrival = 5 * kNsPerUs;
  wl.max_bytes = 64 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const RunMetrics m = sim.run();
  // Two broadcasts per flow (start + finish), 15 tree edges each, 16 B per
  // copy. Retransmissions are impossible (control queues are unbounded).
  EXPECT_EQ(m.control_bytes_on_wire, 50u * 2 * 15 * 16);
}

TEST(R2c2Sim, QueuesStayTiny) {
  // Goal G3: with rate-based control the network runs at very low queuing.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2Sim sim(topo, router, {});
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 200;
  wl.mean_interarrival = 2 * kNsPerUs;
  wl.max_bytes = 128 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const RunMetrics m = sim.run();
  std::vector<double> q(m.max_queue_bytes.begin(), m.max_queue_bytes.end());
  // 99th percentile of per-port max occupancy below a few packets.
  EXPECT_LT(percentile(q, 99), 30e3);
}

TEST(R2c2Sim, RhoZeroRecomputesPerEvent) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg;
  cfg.recompute_interval = 0;
  R2c2Sim sim(topo, router, cfg);
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 20;
  wl.max_bytes = 32 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const RunMetrics m = sim.run();
  for (const FlowRecord& f : m.flows) EXPECT_TRUE(f.finished());
  // One recomputation per applied flow event (starts + finishes).
  EXPECT_GE(sim.recomputations(), 40u);
}

TEST(R2c2Sim, SmallerRhoTracksIdealRatesCloser) {
  // The Fig. 15 mechanism: average assigned rates approach the rho = 0
  // ideal as the recomputation interval shrinks.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 150;
  wl.mean_interarrival = 2 * kNsPerUs;
  wl.max_bytes = 128 * 1024;
  wl.seed = 99;
  const auto arrivals = generate_poisson_uniform(wl);

  const auto run_with_rho = [&](TimeNs rho) {
    R2c2SimConfig cfg;
    cfg.recompute_interval = rho;
    R2c2Sim sim(topo, router, cfg);
    sim.add_flows(arrivals);
    return sim.run();
  };
  const RunMetrics ideal = run_with_rho(0);
  const auto err_vs_ideal = [&](const RunMetrics& m) {
    double total = 0.0;
    for (std::size_t i = 0; i < m.flows.size(); ++i) {
      const double ref = std::max(1.0, ideal.flows[i].avg_assigned_rate_bps);
      total += std::abs(m.flows[i].avg_assigned_rate_bps - ref) / ref;
    }
    return total / static_cast<double>(m.flows.size());
  };
  const double err_small = err_vs_ideal(run_with_rho(20 * kNsPerUs));
  const double err_large = err_vs_ideal(run_with_rho(2000 * kNsPerUs));
  EXPECT_LT(err_small, err_large);
}

TEST(R2c2Sim, HeadroomIsAKnobWithTwoSides) {
  // The headroom trade-off (Fig. 17): a modest 5% reservation costs long
  // flows little, while an extreme reservation visibly wastes capacity.
  // (The FCT *benefit* of small headroom only shows at rack scale and high
  // churn; the full sweep lives in bench/fig17_headroom.)
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 40;
  wl.mean_interarrival = 2 * kNsPerUs;
  wl.size_dist = SizeDistribution::kFixed;
  wl.mean_bytes = 2 << 20;  // all flows are "long"
  wl.seed = 5;
  const auto arrivals = generate_poisson_uniform(wl);
  const auto mean_long_tput = [&](double headroom) {
    R2c2SimConfig cfg;
    cfg.alloc.headroom = headroom;
    R2c2Sim sim(topo, router, cfg);
    sim.add_flows(arrivals);
    const RunMetrics m = sim.run();
    double sum = 0.0;
    const auto v = m.long_flow_tput_gbps();
    for (const double x : v) sum += x;
    return sum / static_cast<double>(v.size());
  };
  const double at_5 = mean_long_tput(0.05);
  const double at_50 = mean_long_tput(0.50);
  EXPECT_GT(at_5, 1.25 * at_50);
}

TEST(R2c2Sim, ReorderBoundedUnderRps) {
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2Sim sim(topo, router, {});
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 100;
  wl.mean_interarrival = 2 * kNsPerUs;
  wl.max_bytes = 256 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const RunMetrics m = sim.run();
  for (const FlowRecord& f : m.flows) {
    EXPECT_LT(f.max_reorder_pkts, 60u);  // Section 5.2 reports max 51
  }
}

TEST(R2c2Sim, VlbRoutingAlsoCompletes) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg;
  cfg.route_alg = RouteAlg::kVlb;
  R2c2Sim sim(topo, router, cfg);
  sim.add_flows(single_flow(0, 5, 512 * 1024));
  const RunMetrics m = sim.run();
  ASSERT_TRUE(m.flows[0].finished());
}

}  // namespace
}  // namespace r2c2::sim
