#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/checksum.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace r2c2 {
namespace {

// --- Rng ---

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanConverges) {
  Rng rng(7);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(42.0));
  EXPECT_NEAR(s.mean(), 42.0, 0.5);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  // Pareto samples are never below the scale parameter xm = mean*(a-1)/a.
  Rng rng(13);
  const double alpha = 1.05, mean = 100e3;
  const double xm = mean * (alpha - 1.0) / alpha;
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto_with_mean(alpha, mean), xm);
}

TEST(Rng, ParetoHeavyTail) {
  // With shape 1.05 most flows are small: the median is far below the mean
  // (the paper's "95% of flows are less than 100 KB" regime).
  Rng rng(13);
  std::vector<double> v;
  for (int i = 0; i < 20000; ++i) v.push_back(rng.pareto_with_mean(1.05, 100e3));
  EXPECT_LT(percentile(v, 50), 15e3);
  EXPECT_GT(percentile(v, 99.9), 100e3);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

// --- Stats ---

TEST(Stats, PercentileBasics) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 99), 9.9);
}

TEST(Stats, PercentileUnsortedInput) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(Stats, PercentileSingleElement) { EXPECT_DOUBLE_EQ(percentile({7.0}, 99), 7.0); }

TEST(Stats, PercentileRejectsEmpty) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50), std::invalid_argument);
}

TEST(Stats, PercentileRejectsBadQ) {
  EXPECT_THROW(percentile({1.0}, -1), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101), std::invalid_argument);
}

TEST(Stats, PercentileSpanMatchesVectorOverload) {
  // Regression pin for the span overload (now one copy instead of two
  // through the by-value overload): results must be bit-identical to the
  // vector path at the edges and in between.
  const std::vector<double> v{9, 7, 5, 3, 1};
  const std::span<const double> s(v);
  EXPECT_DOUBLE_EQ(percentile(s, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(s, 100), 9.0);
  EXPECT_DOUBLE_EQ(percentile(s, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(s, 25), 3.0);
  for (double q : {0.0, 12.5, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(percentile(s, q), percentile(v, q)) << "q=" << q;
  }
  // The span overload must not mutate the caller's storage.
  EXPECT_EQ(v, (std::vector<double>{9, 7, 5, 3, 1}));
}

TEST(Stats, PercentileSpanSingleElement) {
  const std::vector<double> v{42.0};
  const std::span<const double> s(v);
  EXPECT_DOUBLE_EQ(percentile(s, 0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(s, 50), 42.0);
  EXPECT_DOUBLE_EQ(percentile(s, 100), 42.0);
}

TEST(Stats, PercentileSpanRejectsEmptyAndBadQ) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(std::span<const double>{}, 50), std::invalid_argument);
  EXPECT_THROW(percentile(std::span<const double>(v), -0.5), std::invalid_argument);
  EXPECT_THROW(percentile(std::span<const double>(v), 100.5), std::invalid_argument);
}

TEST(Stats, EmpiricalCdfMonotone) {
  std::vector<double> v;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) v.push_back(rng.uniform());
  const auto cdf = empirical_cdf(v, 50);
  ASSERT_FALSE(cdf.empty());
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GE(cdf[i].cum_prob, cdf[i - 1].cum_prob);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cum_prob, 1.0);
}

TEST(Stats, EmpiricalCdfEmpty) { EXPECT_TRUE(empirical_cdf({}).empty()); }

TEST(Stats, EmpiricalCdfTiedMaximaEndExactlyAtOne) {
  // Tied maxima under downsampling used to emit the maximum twice with
  // different cum_prob (the strided point said e.g. 0.97, the tail fix-up
  // appended another at 1.0). Now a tie run collapses to one point whose
  // cum_prob is the rank of its last occurrence.
  std::vector<double> v(100, 5.0);
  for (int i = 0; i < 60; ++i) v[i] = static_cast<double>(i);  // 40 tied maxima
  const auto cdf = empirical_cdf(v, 7);  // stride > 1 lands inside the run
  ASSERT_FALSE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.back().value, 59.0);
  EXPECT_DOUBLE_EQ(cdf.back().cum_prob, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].value, cdf[i - 1].value) << "duplicate abscissa at " << i;
    EXPECT_GE(cdf[i].cum_prob, cdf[i - 1].cum_prob);
  }
}

TEST(Stats, EmpiricalCdfStrideSweepInvariants) {
  // Invariants must hold for every downsampling factor, including ties in
  // the middle and at both ends, and the degenerate all-equal sample.
  Rng rng(31);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(std::floor(rng.uniform() * 20.0));  // many ties
  for (std::size_t max_points : {1, 2, 3, 5, 7, 10, 33, 100, 499, 500, 1000}) {
    const auto cdf = empirical_cdf(v, max_points);
    ASSERT_FALSE(cdf.empty()) << "max_points=" << max_points;
    const double expected_max = *std::max_element(v.begin(), v.end());
    EXPECT_DOUBLE_EQ(cdf.back().value, expected_max) << "max_points=" << max_points;
    EXPECT_DOUBLE_EQ(cdf.back().cum_prob, 1.0) << "max_points=" << max_points;
    for (std::size_t i = 1; i < cdf.size(); ++i) {
      EXPECT_GT(cdf[i].value, cdf[i - 1].value)
          << "duplicate/regressing abscissa, max_points=" << max_points << " i=" << i;
      EXPECT_GT(cdf[i].cum_prob, cdf[i - 1].cum_prob)
          << "non-increasing cum_prob, max_points=" << max_points << " i=" << i;
    }
  }
}

TEST(Stats, EmpiricalCdfAllEqual) {
  const auto cdf = empirical_cdf(std::vector<double>(17, 3.25), 4);
  ASSERT_EQ(cdf.size(), 1u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 3.25);
  EXPECT_DOUBLE_EQ(cdf[0].cum_prob, 1.0);
}

TEST(Stats, EmpiricalCdfExactProbabilities) {
  // Undownsampled, every point's cum_prob is the exact empirical
  // P(X <= x) — ties included.
  const auto cdf = empirical_cdf({1.0, 2.0, 2.0, 3.0}, 100);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].cum_prob, 0.25);
  EXPECT_DOUBLE_EQ(cdf[1].value, 2.0);
  EXPECT_DOUBLE_EQ(cdf[1].cum_prob, 0.75);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[2].cum_prob, 1.0);
}

TEST(Stats, RunningStatsMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, EwmaConverges) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.update(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 10.0);  // first sample adopted directly
  for (int i = 0; i < 50; ++i) e.update(2.0);
  EXPECT_NEAR(e.value(), 2.0, 1e-9);
}

TEST(Stats, EwmaRejectsBadAlpha) {
  EXPECT_THROW(Ewma(0.0), std::invalid_argument);
  EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

// --- Checksum ---

TEST(Checksum, KnownValue) {
  // RFC 1071 example bytes.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xddf2 & 0xffff));
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::uint8_t even[] = {0xab, 0x00};
  const std::uint8_t odd[] = {0xab};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, DetectsSingleByteCorruption) {
  Rng rng(23);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const std::uint16_t sum = internet_checksum(data);
  // Flipping any single byte to a different value must change the checksum
  // (one's-complement sums detect all single-unit errors).
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::vector<std::uint8_t> corrupted = data;
    corrupted[i] ^= 0x5a;
    EXPECT_NE(internet_checksum(corrupted), sum) << "undetected corruption at byte " << i;
  }
}

TEST(Checksum, EmptyInput) { EXPECT_EQ(internet_checksum({}), 0xffff); }

// --- Generator state capture/restore (snapshot support) ---

TEST(Rng, StateRoundTripReproducesExactStream) {
  Rng source(12345);
  // Burn an arbitrary prefix mixing every draw type, so the captured state
  // is mid-stream, not a fresh seed expansion.
  for (int i = 0; i < 1000; ++i) {
    source();
    source.uniform();
    source.uniform_int(97);
    source.bernoulli(0.3);
    source.exponential(5.0);
  }
  const auto saved = source.state();

  // A generator seeded differently, then restored, must continue the exact
  // raw 64-bit stream...
  Rng restored(999);
  restored.set_state(saved);
  Rng reference(1);
  reference.set_state(saved);
  for (int i = 0; i < 4096; ++i) {
    ASSERT_EQ(restored(), reference()) << "raw stream diverged at draw " << i;
  }

  // ...and the derived draws (which consume different numbers of raw words,
  // e.g. rejection sampling in uniform_int) track bit for bit too.
  Rng a(7), b(8);
  a.set_state(saved);
  b.set_state(saved);
  for (int i = 0; i < 4096; ++i) {
    ASSERT_EQ(a.uniform_int(1000), b.uniform_int(1000)) << i;
    ASSERT_EQ(a.uniform(), b.uniform()) << i;
    ASSERT_EQ(a.exponential(2.0), b.exponential(2.0)) << i;
  }
  // And the original keeps producing that same continuation.
  Rng c(5);
  c.set_state(saved);
  ASSERT_EQ(source(), c());
}

// --- Units ---

TEST(Types, TransmissionTime) {
  // 1500 bytes at 10 Gbps = 1.2 us.
  EXPECT_EQ(transmission_time_ns(1500, 10 * kGbps), 1200);
  // 16 bytes at 10 Gbps = 12.8 ns, rounded up.
  EXPECT_EQ(transmission_time_ns(16, 10 * kGbps), 13);
  EXPECT_EQ(transmission_time_ns(0, 10 * kGbps), 0);
}

}  // namespace
}  // namespace r2c2
