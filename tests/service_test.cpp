// Tenant-scale service layer (src/service/): closed-loop archetypes over
// R2c2Sim, per-tenant SLO accounting, and the determinism/snapshot
// contract — closed-loop runs are bit-identical at any engine worker count
// and survive mid-run snapshot/resume.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "routing/routing.h"
#include "service/service.h"
#include "sim/r2c2_sim.h"
#include "snapshot/archive.h"
#include "snapshot/replay.h"
#include "topology/topology.h"

namespace r2c2 {
namespace {

using service::Archetype;
using service::ArrivalMode;
using service::ServiceConfig;
using service::ServiceLayer;
using service::SloReport;
using service::TenantConfig;

sim::R2c2SimConfig base_sim_config() {
  sim::R2c2SimConfig cfg;
  cfg.seed = 11;
  return cfg;
}

TenantConfig rpc_tenant(std::uint64_t max_requests = 30) {
  TenantConfig t;
  t.name = "rpc";
  t.archetype = Archetype::kRpc;
  t.mode = ArrivalMode::kClosedLoop;
  t.clients = {0, 1};
  t.servers = {2, 3};
  t.outstanding = 2;
  t.max_requests = max_requests;
  return t;
}

void drain(sim::R2c2Sim& s) {
  while (!s.idle()) s.run_until(s.now() + 50 * kNsPerUs);
}

TEST(ServiceLayerTest, ClosedLoopRpcCompletesAllRequests) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2Sim s(topo, router, base_sim_config());
  ServiceConfig svc;
  svc.tenants.push_back(rpc_tenant());
  ServiceLayer layer(s, svc);
  layer.start();
  // The closed-loop window bounds in-flight requests at every instant.
  while (!s.idle()) {
    s.run_until(s.now() + 20 * kNsPerUs);
    EXPECT_LE(layer.requests_in_flight(), 2u);
  }
  EXPECT_EQ(layer.issued(0), 30u);
  EXPECT_EQ(layer.completed(0), 30u);
  EXPECT_EQ(layer.timed_out(0), 0u);
  EXPECT_EQ(layer.aborted(0), 0u);
  EXPECT_EQ(layer.requests_in_flight(), 0u);
}

TEST(ServiceLayerTest, IncastFanInAccountsEveryLeaf) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2Sim s(topo, router, base_sim_config());
  TenantConfig t;
  t.name = "agg";
  t.archetype = Archetype::kIncast;
  t.clients = {0};
  t.servers = {4, 5, 6, 7};
  t.outstanding = 1;
  t.max_requests = 20;
  t.fanout = 3;
  t.query_bytes = 512;
  t.leaf_response_bytes = 4 * 1024;
  ServiceConfig svc;
  svc.tenants.push_back(t);
  ServiceLayer layer(s, svc);
  layer.start();
  drain(s);
  EXPECT_EQ(layer.completed(0), 20u);
  const SloReport rep = layer.report();
  // Completion = last leaf response: all K legs' bytes count, per request.
  EXPECT_EQ(rep.tenants[0].bytes_delivered, 20u * 3u * (512u + 4u * 1024u));
  EXPECT_GT(rep.tenants[0].p50_us, 0.0);
}

TEST(ServiceLayerTest, StragglerTimeoutAbandonsSlowFanIns) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2Sim s(topo, router, base_sim_config());
  TenantConfig t;
  t.name = "agg";
  t.archetype = Archetype::kIncast;
  t.clients = {0};
  t.servers = {4, 5, 6, 7};
  t.outstanding = 2;
  t.max_requests = 15;
  t.fanout = 4;
  t.leaf_response_bytes = 16 * 1024;
  // Far too short for a 16 KB fan-in: every request must time out, and the
  // closed loop must keep issuing through the timeouts.
  t.straggler_timeout = 2 * kNsPerUs;
  ServiceConfig svc;
  svc.tenants.push_back(t);
  ServiceLayer layer(s, svc);
  layer.start();
  drain(s);
  EXPECT_EQ(layer.issued(0), 15u);
  EXPECT_EQ(layer.timed_out(0) + layer.completed(0), 15u);
  EXPECT_GT(layer.timed_out(0), 0u);
  const SloReport rep = layer.report();
  // A timed-out request is an SLO violation by definition.
  EXPECT_GT(rep.tenants[0].slo_violation_fraction, 0.0);
}

TEST(ServiceLayerTest, StorageShiftAndOpenLoopDrainCompletely) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2Sim s(topo, router, base_sim_config());
  TenantConfig t;
  t.name = "kv";
  t.archetype = Archetype::kStorage;
  t.mode = ArrivalMode::kOpenLoop;
  t.clients = {0, 1};
  t.servers = {8, 9, 10, 11};
  t.mean_interarrival = 5 * kNsPerUs;
  t.max_requests = 40;
  t.shift_at = 60 * kNsPerUs;  // mid-run popularity/write-mix shift
  t.write_fraction = 0.0;
  t.shifted_write_fraction = 1.0;
  ServiceConfig svc;
  svc.tenants.push_back(t);
  ServiceLayer layer(s, svc);
  layer.start();
  drain(s);
  EXPECT_EQ(layer.issued(0), 40u);
  EXPECT_EQ(layer.completed(0), 40u);
  EXPECT_EQ(layer.requests_in_flight(), 0u);
}

TEST(ServiceLayerTest, ReportOrdersPercentilesAndBoundsFairness) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2Sim s(topo, router, base_sim_config());
  ServiceConfig svc;
  svc.tenants.push_back(rpc_tenant(25));
  TenantConfig second = rpc_tenant(25);
  second.name = "rpc2";
  second.clients = {8, 9};
  second.servers = {10, 11};
  second.response_bytes = 64 * 1024;  // heavier responses: unequal goodput
  svc.tenants.push_back(second);
  ServiceLayer layer(s, svc);
  layer.start();
  drain(s);
  const SloReport rep = layer.report();
  ASSERT_EQ(rep.tenants.size(), 2u);
  for (const auto& tr : rep.tenants) {
    EXPECT_EQ(tr.completed, 25u);
    EXPECT_LE(tr.p50_us, tr.p99_us);
    EXPECT_LE(tr.p99_us, tr.p999_us);
    EXPECT_GE(tr.slo_violation_fraction, 0.0);
    EXPECT_LE(tr.slo_violation_fraction, 1.0);
    EXPECT_GT(tr.goodput_bps, 0.0);
  }
  EXPECT_GT(rep.jain_fairness, 0.5);  // two active tenants, both finishing
  EXPECT_LE(rep.jain_fairness, 1.0);
  // The heavier tenant moved more bytes, so fairness is strictly below 1.
  EXPECT_LT(rep.jain_fairness, 1.0);
}

TEST(ServiceLayerTest, RejectsUnusableConfigs) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2Sim s(topo, router, base_sim_config());
  EXPECT_THROW(ServiceLayer(s, ServiceConfig{}), std::invalid_argument);
  {
    ServiceConfig svc;
    TenantConfig t = rpc_tenant();
    t.clients.clear();
    svc.tenants.push_back(t);
    EXPECT_THROW(ServiceLayer(s, svc), std::invalid_argument);
  }
  {
    ServiceConfig svc;
    TenantConfig t = rpc_tenant();
    t.archetype = Archetype::kStorage;
    t.zipf_theta = 1.0;  // closed form requires theta < 1
    svc.tenants.push_back(t);
    EXPECT_THROW(ServiceLayer(s, svc), std::invalid_argument);
  }
  {
    ServiceConfig svc;
    TenantConfig t = rpc_tenant();
    t.outstanding = 0;
    svc.tenants.push_back(t);
    EXPECT_THROW(ServiceLayer(s, svc), std::invalid_argument);
  }
}

TEST(ServiceLayerTest, TenantMixEntersConfigFingerprint) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2Sim plain(topo, router, base_sim_config());
  const std::uint64_t bare = plain.config_fingerprint();

  sim::R2c2Sim with_a(topo, router, base_sim_config());
  ServiceConfig svc_a;
  svc_a.tenants.push_back(rpc_tenant());
  ServiceLayer layer_a(with_a, svc_a);

  sim::R2c2Sim with_b(topo, router, base_sim_config());
  ServiceConfig svc_b = svc_a;
  svc_b.tenants[0].slo_latency += kNsPerUs;
  ServiceLayer layer_b(with_b, svc_b);

  EXPECT_NE(bare, with_a.config_fingerprint());
  EXPECT_NE(with_a.config_fingerprint(), with_b.config_fingerprint());
}

// --- Determinism & snapshot: the "tenant" replay scenario ---------------

snapshot::ReplayConfig tenant_config(int workers) {
  snapshot::ReplayConfig rc;
  rc.scenario = "tenant";
  rc.engine_shards = 4;
  rc.engine_workers = workers;
  return rc;
}

void expect_reports_equal(const SloReport& want, const SloReport& got) {
  ASSERT_EQ(want.tenants.size(), got.tenants.size());
  for (std::size_t i = 0; i < want.tenants.size(); ++i) {
    EXPECT_EQ(want.tenants[i].issued, got.tenants[i].issued) << i;
    EXPECT_EQ(want.tenants[i].completed, got.tenants[i].completed) << i;
    EXPECT_EQ(want.tenants[i].timed_out, got.tenants[i].timed_out) << i;
    EXPECT_EQ(want.tenants[i].aborted, got.tenants[i].aborted) << i;
    EXPECT_EQ(want.tenants[i].bytes_delivered, got.tenants[i].bytes_delivered) << i;
    EXPECT_EQ(want.tenants[i].p99_us, got.tenants[i].p99_us) << i;
  }
}

TEST(ServiceShardedTest, WorkerCountIsBitInvisible) {
  snapshot::Scenario base(tenant_config(1));
  const snapshot::ReplayResult want = base.run();
  ASSERT_FALSE(want.digests.points.empty());
  const SloReport want_rep = base.service()->report();
  // The run actually exercised all three archetypes.
  for (const auto& tr : want_rep.tenants) EXPECT_GT(tr.completed, 0u) << tr.name;
  for (const int workers : {2, 4}) {
    snapshot::Scenario sc(tenant_config(workers));
    const snapshot::ReplayResult got = sc.run();
    EXPECT_EQ(snapshot::DigestLog::first_divergence(want.digests, got.digests), -1)
        << "digest trail diverged at " << workers << " workers";
    EXPECT_EQ(want.final_digest, got.final_digest) << workers;
    EXPECT_EQ(want.metrics_digest, got.metrics_digest) << workers;
    expect_reports_equal(want_rep, sc.service()->report());
  }
}

TEST(ServiceShardedTest, SnapshotBytesIdenticalAcrossWorkerCounts) {
  const auto snap_at = [](int workers, TimeNs at) {
    snapshot::Scenario sc(tenant_config(workers));
    sc.simulator().run_until(at);
    snapshot::ArchiveWriter w;
    sc.simulator().save(w);
    return w.finish();
  };
  const std::vector<std::uint8_t> base = snap_at(1, 200 * kNsPerUs);
  EXPECT_EQ(base, snap_at(2, 200 * kNsPerUs));
  EXPECT_EQ(base, snap_at(4, 200 * kNsPerUs));
}

TEST(ServiceShardedTest, MidRunResumeUnderDifferentWorkerCount) {
  snapshot::Scenario straight(tenant_config(1));
  const snapshot::ReplayResult want = straight.run();

  // Snapshot on the digest grid (a digest_every multiple): sharded
  // trajectories are a function of the run_until horizon sequence, so a
  // resumed run must land on the same grid as the straight run.
  snapshot::Scenario first(tenant_config(1));
  first.simulator().run_until(160 * kNsPerUs);
  // In-flight requests must actually cross the snapshot for this to prove
  // anything.
  EXPECT_GT(first.service()->requests_in_flight(), 0u);
  snapshot::ArchiveWriter w;
  first.simulator().save(w);
  std::vector<std::uint8_t> bytes = w.finish();

  snapshot::Scenario resumed(tenant_config(4));
  snapshot::ArchiveReader r(std::move(bytes));
  resumed.simulator().load(r);
  const snapshot::ReplayResult got = resumed.run();
  EXPECT_EQ(want.final_digest, got.final_digest);
  EXPECT_EQ(want.metrics_digest, got.metrics_digest);
  expect_reports_equal(straight.service()->report(), resumed.service()->report());
}

TEST(ServiceShardedTest, ServiceArchiveRequiresMatchingAttachment) {
  // A tenant archive must not load into a service-less sim (and the
  // mismatch must surface as a SnapshotError, not silent state loss).
  snapshot::Scenario tenant(tenant_config(1));
  tenant.simulator().run_until(100 * kNsPerUs);
  snapshot::ArchiveWriter w;
  tenant.simulator().save(w);
  std::vector<std::uint8_t> bytes = w.finish();

  snapshot::ReplayConfig plain = tenant_config(1);
  plain.scenario = "adaptive";
  snapshot::Scenario other(plain);
  snapshot::ArchiveReader r(std::move(bytes));
  EXPECT_THROW(other.simulator().load(r), snapshot::SnapshotError);
}

}  // namespace
}  // namespace r2c2
