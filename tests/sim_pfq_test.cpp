#include <gtest/gtest.h>

#include "common/stats.h"
#include "sim/pfq_sim.h"

namespace r2c2::sim {
namespace {

std::vector<FlowArrival> single_flow(NodeId src, NodeId dst, std::uint64_t bytes,
                                     TimeNs start = 0) {
  FlowArrival f;
  f.start = start;
  f.src = src;
  f.dst = dst;
  f.bytes = bytes;
  return {f};
}

TEST(PfqSim, SingleFlowSustainsLineRate) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  PfqSimConfig cfg;
  cfg.route_alg = RouteAlg::kDor;
  PfqSim sim(topo, router, cfg);
  sim.add_flows(single_flow(0, 5, 2 << 20));
  const RunMetrics m = sim.run();
  ASSERT_TRUE(m.flows[0].finished());
  // Back-pressure with a 2-packet quota must not throttle a solo flow.
  EXPECT_GT(m.flows[0].throughput_bps(), 9e9);
  EXPECT_LE(m.flows[0].throughput_bps(), 10.1e9);
}

TEST(PfqSim, AllFlowsComplete) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  PfqSim sim(topo, router, {});
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 150;
  wl.mean_interarrival = 2 * kNsPerUs;
  wl.max_bytes = 128 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const RunMetrics m = sim.run();
  for (const FlowRecord& f : m.flows) EXPECT_TRUE(f.finished()) << "flow " << f.id;
}

TEST(PfqSim, PerFlowFairnessOnSharedLink) {
  const Topology topo = make_torus({8}, 10 * kGbps, 100);
  const Router router(topo);
  PfqSimConfig cfg;
  cfg.route_alg = RouteAlg::kDor;
  PfqSim sim(topo, router, cfg);
  std::vector<FlowArrival> flows;
  flows.push_back(single_flow(0, 2, 4 << 20)[0]);
  flows.push_back(single_flow(1, 3, 4 << 20)[0]);  // shares 1->2
  sim.add_flows(flows);
  const RunMetrics m = sim.run();
  ASSERT_TRUE(m.flows[0].finished() && m.flows[1].finished());
  // Round-robin gives a clean 50/50 split while both are active.
  const double ratio = m.flows[0].throughput_bps() / m.flows[1].throughput_bps();
  EXPECT_GT(ratio, 0.75);
  EXPECT_LT(ratio, 1.35);
}

TEST(PfqSim, BackpressureBoundsQueues) {
  // Per-flow quota K means no port can ever hold more than K bytes per
  // flow: total occupancy is bounded by active-flows x K.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  PfqSimConfig cfg;
  PfqSim sim(topo, router, cfg);
  std::vector<FlowArrival> flows;
  for (NodeId s : {1, 2, 3, 4, 6, 7, 8, 9}) {
    FlowArrival f;
    f.src = s;
    f.dst = 0;
    f.bytes = 1 << 20;
    flows.push_back(f);
  }
  sim.add_flows(flows);
  const RunMetrics m = sim.run();
  const auto max_q = *std::max_element(m.max_queue_bytes.begin(), m.max_queue_bytes.end());
  EXPECT_LE(max_q, flows.size() * cfg.per_flow_quota_bytes);
  for (const FlowRecord& f : m.flows) EXPECT_TRUE(f.finished());
}

TEST(PfqSim, IncastSharesSink) {
  // 4 senders into one sink: each gets ~1/4 of the sink capacity... but the
  // sink has 4 incoming links (torus), so with distinct last hops each can
  // approach line rate; force a shared last link by colinear placement.
  const Topology topo = make_torus({8}, 10 * kGbps, 100);
  const Router router(topo);
  PfqSimConfig cfg;
  cfg.route_alg = RouteAlg::kDor;
  PfqSim sim(topo, router, cfg);
  std::vector<FlowArrival> flows;
  for (NodeId s : {1, 2, 3}) {  // all route x-forward through 3->4
    FlowArrival f;
    f.src = s;
    f.dst = 4;
    f.bytes = 3 << 20;
    flows.push_back(f);
  }
  sim.add_flows(flows);
  const RunMetrics m = sim.run();
  std::vector<double> tputs;
  for (const FlowRecord& f : m.flows) {
    EXPECT_TRUE(f.finished());
    tputs.push_back(f.throughput_bps());
  }
  // All complete; aggregate bounded by the shared 3->4 link.
  EXPECT_LE(*std::max_element(tputs.begin(), tputs.end()), 10.1e9);
}

TEST(PfqSim, WorkConservingUnderSpray) {
  // RPS spraying: one flow between far corners exceeds single-link rate
  // when per-hop quotas don't throttle it (idealized forwarding).
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  PfqSim sim(topo, router, {});
  sim.add_flows(single_flow(0, 5, 4 << 20));
  const RunMetrics m = sim.run();
  ASSERT_TRUE(m.flows[0].finished());
  EXPECT_GT(m.flows[0].throughput_bps(), 11e9);  // multipath gain
}

}  // namespace
}  // namespace r2c2::sim
