#include <gtest/gtest.h>

#include <vector>

#include "common/checksum.h"
#include "common/rng.h"
#include "packet/packet.h"
#include "topology/topology.h"

namespace r2c2 {
namespace {

// --- RouteCode ---

TEST(RouteCode, EncodeDecodeRoundTrip) {
  const std::vector<int> ports{0, 7, 3, 5, 1, 2, 6, 4, 0, 7};
  const RouteCode code = RouteCode::encode(ports);
  ASSERT_EQ(code.length(), 10);
  for (std::size_t i = 0; i < ports.size(); ++i) {
    EXPECT_EQ(code.port_at(static_cast<int>(i)), ports[i]) << "hop " << i;
  }
}

TEST(RouteCode, MaxLengthRoute) {
  // Section 4.2: 3 bits per hop in a 128-bit field = 42 hops.
  std::vector<int> ports(kMaxRouteHops);
  Rng rng(3);
  for (auto& p : ports) p = static_cast<int>(rng.uniform_int(8));
  const RouteCode code = RouteCode::encode(ports);
  for (int i = 0; i < kMaxRouteHops; ++i) EXPECT_EQ(code.port_at(i), ports[static_cast<std::size_t>(i)]);
}

TEST(RouteCode, RejectsTooLongRoute) {
  std::vector<int> ports(kMaxRouteHops + 1, 0);
  EXPECT_THROW(RouteCode::encode(ports), std::length_error);
}

TEST(RouteCode, RejectsWidePort) {
  const std::vector<int> ports{8};
  EXPECT_THROW(RouteCode::encode(ports), std::out_of_range);
}

TEST(RouteCode, RejectsOutOfRangeIndex) {
  const RouteCode code = RouteCode::encode(std::vector<int>{1, 2});
  EXPECT_THROW(code.port_at(2), std::out_of_range);
  EXPECT_THROW(code.port_at(-1), std::out_of_range);
}

TEST(RouteCode, EncodePathAgainstTopology) {
  const Topology topo = make_torus({4, 4}, kGbps, 100);
  const Path path{0, 1, 2, 6};
  const RouteCode code = encode_path(topo, path);
  ASSERT_EQ(code.length(), 3);
  // Following the encoded ports reproduces the path.
  NodeId at = 0;
  for (int i = 0; i < code.length(); ++i) {
    at = topo.link(topo.out_link_by_port(at, code.port_at(i))).to;
    EXPECT_EQ(at, path[static_cast<std::size_t>(i) + 1]);
  }
}

TEST(RouteCode, EncodePathRejectsNonAdjacent) {
  const Topology topo = make_torus({4, 4}, kGbps, 100);
  EXPECT_THROW(encode_path(topo, Path{0, 5}), std::invalid_argument);
}

// --- DataHeader ---

TEST(DataHeader, WireSizeMatchesPaperFieldList) {
  // Fig. 6: type, rlen, ridx, flow(4), src(2), dst(2), seq(4), checksum(2),
  // plen(2), route(16) = 35 bytes.
  EXPECT_EQ(DataHeader::kWireSize, 35u);
}

TEST(DataHeader, SerializeParseRoundTrip) {
  DataHeader h;
  h.rlen = 6;
  h.ridx = 2;
  h.flow = 0xdeadbeef;
  h.src = 511;
  h.dst = 42;
  h.seq = 123456789;
  h.plen = 1465;
  for (std::size_t i = 0; i < h.route.size(); ++i) h.route[i] = static_cast<std::uint8_t>(i * 17);

  std::vector<std::uint8_t> wire(DataHeader::kWireSize);
  h.serialize(wire);
  const auto parsed = DataHeader::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rlen, h.rlen);
  EXPECT_EQ(parsed->ridx, h.ridx);
  EXPECT_EQ(parsed->flow, h.flow);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->seq, h.seq);
  EXPECT_EQ(parsed->plen, h.plen);
  EXPECT_EQ(parsed->route, h.route);
}

TEST(DataHeader, ChecksumDetectsEveryByteFlip) {
  DataHeader h;
  h.rlen = 3;
  h.flow = 7;
  h.src = 1;
  h.dst = 2;
  std::vector<std::uint8_t> wire(DataHeader::kWireSize);
  h.serialize(wire);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::vector<std::uint8_t> corrupted = wire;
    corrupted[i] ^= 0xff;
    if (i == 0) {
      // A corrupted type byte is rejected as not-a-data-packet.
      EXPECT_FALSE(DataHeader::parse(corrupted).has_value());
    } else {
      EXPECT_FALSE(DataHeader::parse(corrupted).has_value()) << "byte " << i;
    }
  }
}

TEST(DataHeader, ParseRejectsShortBuffer) {
  std::vector<std::uint8_t> wire(DataHeader::kWireSize - 1);
  EXPECT_FALSE(DataHeader::parse(wire).has_value());
}

TEST(DataHeader, SerializeRejectsSmallBuffer) {
  DataHeader h;
  std::vector<std::uint8_t> wire(DataHeader::kWireSize - 1);
  EXPECT_THROW(h.serialize(wire), std::length_error);
}

// --- BroadcastMsg ---

TEST(BroadcastMsg, Is16Bytes) { EXPECT_EQ(BroadcastMsg::kWireSize, 16u); }

TEST(BroadcastMsg, SerializeParseRoundTrip) {
  BroadcastMsg m;
  m.type = PacketType::kFlowStart;
  m.src = 300;
  m.dst = 17;
  m.fseq = 200;
  m.weight = 3;
  m.priority = 2;
  m.demand_kbps = 4'000'000'000u;  // 4 Tbps, the paper's max
  m.tree = 5;
  m.rp = RouteAlg::kVlb;

  std::vector<std::uint8_t> wire(BroadcastMsg::kWireSize);
  m.serialize(wire);
  const auto parsed = BroadcastMsg::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, m.type);
  EXPECT_EQ(parsed->src, m.src);
  EXPECT_EQ(parsed->dst, m.dst);
  EXPECT_EQ(parsed->fseq, m.fseq);
  EXPECT_EQ(parsed->weight, m.weight);
  EXPECT_EQ(parsed->priority, m.priority);
  EXPECT_EQ(parsed->demand_kbps, m.demand_kbps);
  EXPECT_EQ(parsed->tree, m.tree);
  EXPECT_EQ(parsed->rp, m.rp);
}

TEST(BroadcastMsg, AllEventTypesRoundTrip) {
  for (const PacketType type :
       {PacketType::kFlowStart, PacketType::kFlowFinish, PacketType::kDemandUpdate}) {
    BroadcastMsg m;
    m.type = type;
    std::vector<std::uint8_t> wire(BroadcastMsg::kWireSize);
    m.serialize(wire);
    const auto parsed = BroadcastMsg::parse(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, type);
  }
}

TEST(BroadcastMsg, ChecksumDetectsCorruption) {
  BroadcastMsg m;
  m.src = 12;
  m.dst = 34;
  m.demand_kbps = 999;
  std::vector<std::uint8_t> wire(BroadcastMsg::kWireSize);
  m.serialize(wire);
  for (std::size_t i = 1; i < wire.size(); ++i) {
    std::vector<std::uint8_t> corrupted = wire;
    corrupted[i] ^= 0xa5;
    EXPECT_FALSE(BroadcastMsg::parse(corrupted).has_value()) << "byte " << i;
  }
}

TEST(BroadcastMsg, RejectsDataPacketType) {
  std::vector<std::uint8_t> wire(BroadcastMsg::kWireSize, 0);
  wire[0] = static_cast<std::uint8_t>(PacketType::kData);
  EXPECT_FALSE(BroadcastMsg::parse(wire).has_value());
}

TEST(BroadcastMsg, RejectsUnknownRoutingProtocol) {
  BroadcastMsg m;
  std::vector<std::uint8_t> wire(BroadcastMsg::kWireSize);
  m.serialize(wire);
  wire[13] = 200;  // invalid rp
  // Fix up checksum so only the rp check can reject.
  wire[14] = wire[15] = 0;
  std::vector<std::uint8_t> scratch = wire;
  const std::uint16_t sum = internet_checksum(scratch);
  wire[14] = static_cast<std::uint8_t>(sum >> 8);
  wire[15] = static_cast<std::uint8_t>(sum & 0xff);
  EXPECT_FALSE(BroadcastMsg::parse(wire).has_value());
}

// --- RouteUpdatePacket ---

TEST(RouteUpdate, SerializeParseRoundTrip) {
  RouteUpdatePacket pkt;
  pkt.origin = 99;
  pkt.tree = 2;
  for (int i = 0; i < 10; ++i) {
    pkt.entries.push_back({static_cast<NodeId>(i * 3), static_cast<std::uint8_t>(i),
                           i % 2 ? RouteAlg::kVlb : RouteAlg::kRps});
  }
  const auto wire = pkt.serialize();
  EXPECT_EQ(wire.size(), pkt.wire_size());
  const auto parsed = RouteUpdatePacket::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->origin, pkt.origin);
  EXPECT_EQ(parsed->tree, pkt.tree);
  ASSERT_EQ(parsed->entries.size(), pkt.entries.size());
  for (std::size_t i = 0; i < pkt.entries.size(); ++i) {
    EXPECT_EQ(parsed->entries[i].flow_src, pkt.entries[i].flow_src);
    EXPECT_EQ(parsed->entries[i].fseq, pkt.entries[i].fseq);
    EXPECT_EQ(parsed->entries[i].rp, pkt.entries[i].rp);
  }
}

TEST(RouteUpdate, PaperCapacityClaim) {
  // Section 3.4: ~300 {flow, routing protocol} pairs fit one 1,500-byte
  // packet (4-byte flow id + 1-byte protocol each).
  EXPECT_GE(RouteUpdatePacket::max_entries_per_packet(), 290u);
  EXPECT_LE(RouteUpdatePacket::max_entries_per_packet(), 300u);
}

TEST(RouteUpdate, MaxEntriesFitMtu) {
  RouteUpdatePacket pkt;
  pkt.entries.resize(RouteUpdatePacket::max_entries_per_packet());
  EXPECT_LE(pkt.serialize().size(), kMtuBytes);
  pkt.entries.emplace_back();
  EXPECT_THROW(pkt.serialize(), std::length_error);
}

TEST(RouteUpdate, ChecksumDetectsCorruption) {
  RouteUpdatePacket pkt;
  pkt.entries.push_back({7, 1, RouteAlg::kWlb});
  auto wire = pkt.serialize();
  wire[6] ^= 0x1;
  EXPECT_FALSE(RouteUpdatePacket::parse(wire).has_value());
}

TEST(RouteUpdate, ParseRejectsTruncatedEntries) {
  RouteUpdatePacket pkt;
  pkt.entries.push_back({7, 1, RouteAlg::kWlb});
  pkt.entries.push_back({8, 2, RouteAlg::kRps});
  auto wire = pkt.serialize();
  wire.resize(wire.size() - 3);
  EXPECT_FALSE(RouteUpdatePacket::parse(wire).has_value());
}

}  // namespace
}  // namespace r2c2
