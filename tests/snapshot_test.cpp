// The snapshot subsystem (src/snapshot/): archive container hardening,
// engine event-queue round trips, generator/stack state capture, and the
// headline guarantee — a simulation resumed from a snapshot continues
// bit-identically (per-tick digests and final metrics) to the run that was
// never interrupted, for the fault-injection and GA-selection scenarios at
// 1 and 4 threads.
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "broadcast/broadcast.h"
#include "r2c2/stack.h"
#include "sim/engine.h"
#include "snapshot/archive.h"
#include "snapshot/digest.h"
#include "snapshot/replay.h"
#include "topology/topology.h"

namespace r2c2 {
namespace {

using sim::Engine;
using sim::EventDesc;
using snapshot::ArchiveReader;
using snapshot::ArchiveWriter;
using snapshot::Digest;
using snapshot::DigestLog;
using snapshot::ReplayConfig;
using snapshot::ReplayResult;
using snapshot::Scenario;
using snapshot::SnapshotError;

// --- Archive container -----------------------------------------------------

TEST(Archive, ScalarAndSectionRoundTrip) {
  ArchiveWriter w;
  w.begin_section("alpha");
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.141592653589793);
  w.str("hello, rack");
  w.end_section();
  w.begin_section("beta");
  const std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
  w.bytes(blob);
  w.end_section();

  ArchiveReader r(w.finish());
  EXPECT_TRUE(r.has_section("alpha"));
  EXPECT_TRUE(r.has_section("beta"));
  EXPECT_FALSE(r.has_section("gamma"));

  // Sections are random access: read beta first.
  r.open_section("beta");
  std::vector<std::uint8_t> out(5);
  r.bytes(out);
  EXPECT_EQ(out, blob);
  r.close_section();

  r.open_section("alpha");
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.141592653589793);
  EXPECT_EQ(r.str(), "hello, rack");
  EXPECT_EQ(r.remaining(), 0u);
  r.close_section();
}

TEST(Archive, StrictConsumptionAndMissingSections) {
  ArchiveWriter w;
  w.begin_section("s");
  w.u32(7);
  w.u32(8);
  w.end_section();
  const std::vector<std::uint8_t> bytes = w.finish();

  {
    ArchiveReader r(bytes);
    r.open_section("s");
    r.u32();
    EXPECT_THROW(r.close_section(), SnapshotError);  // under-read
  }
  {
    ArchiveReader r(bytes);
    r.open_section("s");
    r.u32();
    r.u32();
    EXPECT_THROW(r.u32(), SnapshotError);  // over-read
  }
  {
    ArchiveReader r(bytes);
    EXPECT_THROW(r.open_section("nope"), SnapshotError);
  }
  EXPECT_THROW(ArchiveReader(std::vector<std::uint8_t>{}), SnapshotError);
}

TEST(Archive, RejectsWrongVersion) {
  ArchiveWriter w;
  w.begin_section("s");
  w.u8(1);
  w.end_section();
  std::vector<std::uint8_t> bytes = w.finish();
  bytes[8] ^= 0x02;  // format-version field follows the 8-byte magic
  EXPECT_THROW(ArchiveReader(std::move(bytes)), SnapshotError);
}

// --- Digests ---------------------------------------------------------------

TEST(Digest, OrderSensitive) {
  Digest a, b;
  a.mix(1);
  a.mix(2);
  b.mix(2);
  b.mix(1);
  EXPECT_NE(a.value(), b.value());
}

TEST(DigestLog, FileRoundTripAndFirstDivergence) {
  DigestLog log;
  log.record(100, 0xdeadbeefULL);
  log.record(200, 0x0123456789abcdefULL);
  log.record(300, 0x1ULL);
  const std::string path = ::testing::TempDir() + "digest_log_test.txt";
  ASSERT_TRUE(log.write_file(path));
  const DigestLog back = DigestLog::read_file(path);
  ASSERT_EQ(back.points.size(), 3u);
  EXPECT_EQ(back.points, log.points);
  EXPECT_EQ(DigestLog::first_divergence(log, back), -1);

  DigestLog other = log;
  other.points[1].digest ^= 1;
  EXPECT_EQ(DigestLog::first_divergence(log, other), 1);
  DigestLog prefix = log;
  prefix.points.pop_back();
  EXPECT_EQ(DigestLog::first_divergence(log, prefix), -1);  // prefix, not divergence
}

// --- Engine event-queue round trip ----------------------------------------

TEST(EngineSnapshot, PendingQueueRoundTripsAndReplaysIdentically) {
  // Two engines execute the same tagged schedule; one is serialized midway
  // and restored into a third. The restored engine must replay the exact
  // remaining interleaving, including (time, seq) ties.
  constexpr std::uint32_t kKind = 42;
  auto scheduled = [](Engine& e, std::vector<std::uint64_t>& log) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      e.schedule_at(static_cast<TimeNs>(10 * (i % 3)), EventDesc{kKind, i, 0},
                    [&log, i] { log.push_back(i); });
    }
  };
  std::vector<std::uint64_t> ref_log;
  Engine ref;
  scheduled(ref, ref_log);
  ref.run();

  std::vector<std::uint64_t> src_log;
  Engine src;
  scheduled(src, src_log);
  src.run(5);  // partial: only the t=0 events fired
  ArchiveWriter w;
  src.save(w);

  std::vector<std::uint64_t> restored_log = src_log;
  Engine restored;
  ArchiveReader r(w.finish());
  restored.load(r, [&restored_log](const EventDesc& d) -> Engine::Action {
    if (d.kind != kKind) throw SnapshotError("unknown kind");
    const std::uint64_t i = d.a;
    return [&restored_log, i] { restored_log.push_back(i); };
  });
  EXPECT_EQ(restored.now(), src.now());
  EXPECT_EQ(restored.pending(), src.pending());
  EXPECT_EQ(restored.next_seq(), src.next_seq());
  restored.run();
  EXPECT_EQ(restored_log, ref_log);
  EXPECT_EQ(restored.total_events(), ref.total_events());
}

TEST(EngineSnapshot, OpaqueEventsMakeTheQueueUnsaveable) {
  Engine e;
  e.schedule_at(5, [] {});  // untagged: kind 0
  ArchiveWriter w;
  EXPECT_THROW(e.save(w), SnapshotError);
}

// --- R2c2Stack state capture ----------------------------------------------

struct MiniRack {
  Topology topo = make_torus({2, 2}, 10 * kGbps, 100);
  Router router{topo};
  BroadcastTrees trees{topo, 2};
  RackContext ctx;
  std::deque<std::pair<NodeId, std::vector<std::uint8_t>>> wire;
  std::vector<std::unique_ptr<R2c2Stack>> stacks;

  MiniRack() {
    ctx.topo = &topo;
    ctx.router = &router;
    ctx.trees = &trees;
    ctx.lease_interval = 50 * kNsPerUs;
    ctx.lease_ttl = 200 * kNsPerUs;
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      R2c2Stack::Callbacks cb;
      cb.send_control = [this](NodeId next, std::vector<std::uint8_t> bytes) {
        wire.emplace_back(next, std::move(bytes));
      };
      stacks.push_back(std::make_unique<R2c2Stack>(n, ctx, std::move(cb)));
    }
  }
  void pump() {
    while (!wire.empty()) {
      auto [node, bytes] = std::move(wire.front());
      wire.pop_front();
      stacks[node]->on_control_packet(bytes);
    }
  }
};

TEST(StackSnapshot, RoundTripContinuesIdentically) {
  MiniRack rack;
  const FlowId f0 = rack.stacks[0]->open_flow(3);
  rack.stacks[0]->open_flow(2, {.alg = RouteAlg::kVlb, .weight = 2.0});
  rack.stacks[1]->open_flow(0);
  rack.pump();
  rack.stacks[0]->tick(60 * kNsPerUs);
  rack.pump();
  rack.stacks[0]->note_backlog(f0, 4096);
  rack.stacks[0]->recompute();
  rack.pump();
  R2c2Stack& original = *rack.stacks[0];

  ArchiveWriter w;
  original.save(w, "node0");
  const std::vector<std::uint8_t> bytes = w.finish();

  // Restore into a stack built with a *different* seed: every draw must
  // come from the restored RNG state, not the constructor's.
  std::vector<std::vector<std::uint8_t>> restored_wire;
  R2c2Stack::Callbacks cb;
  cb.send_control = [&restored_wire](NodeId, std::vector<std::uint8_t> b) {
    restored_wire.push_back(std::move(b));
  };
  R2c2Stack restored(0, rack.ctx, std::move(cb), /*seed=*/987654321);
  ArchiveReader r(bytes);
  restored.load(r, "node0");

  Digest da, db;
  original.mix_digest(da);
  restored.mix_digest(db);
  EXPECT_EQ(da.value(), db.value());
  EXPECT_EQ(restored.view().view_hash(), original.view().view_hash());
  EXPECT_EQ(restored.own_flows(), original.own_flows());
  EXPECT_EQ(restored.now(), original.now());

  // Same next operation on both -> same flow id, same bytes on the wire,
  // same state afterwards.
  rack.wire.clear();
  const FlowId next_orig = original.open_flow(1, {.weight = 3.0});
  const FlowId next_rest = restored.open_flow(1, {.weight = 3.0});
  EXPECT_EQ(next_orig, next_rest);
  std::vector<std::vector<std::uint8_t>> original_wire;
  while (!rack.wire.empty()) {
    original_wire.push_back(std::move(rack.wire.front().second));
    rack.wire.pop_front();
  }
  EXPECT_EQ(original_wire, restored_wire);
  Digest da2, db2;
  original.mix_digest(da2);
  restored.mix_digest(db2);
  EXPECT_EQ(da2.value(), db2.value());
}

// --- Full simulation snapshots ---------------------------------------------

ReplayConfig scenario_config(const std::string& scenario, int threads) {
  ReplayConfig cfg;
  cfg.scenario = scenario;
  cfg.threads = threads;
  cfg.seed = 11;
  cfg.digest_every = 20 * kNsPerUs;
  return cfg;
}

// Serializes a mid-run simulator of the given scenario and returns the
// archive bytes plus the grid-aligned time it was taken at.
std::pair<std::vector<std::uint8_t>, TimeNs> golden_snapshot(const ReplayConfig& cfg,
                                                             TimeNs snap_at) {
  Scenario scenario(cfg);
  scenario.simulator().run_until(snap_at);
  ArchiveWriter w;
  scenario.simulator().save(w);
  return {w.finish(), snap_at};
}

TEST(SimSnapshot, LoadRejectsWrongConfigAndUsedSims) {
  const ReplayConfig cfg = scenario_config("fault", 1);
  const auto [bytes, snap_at] = golden_snapshot(cfg, 400 * kNsPerUs);

  {
    // Same scenario family, different seed: the config fingerprint differs.
    ReplayConfig other = cfg;
    other.seed = 12;
    Scenario wrong(other);
    ArchiveReader r(bytes);
    EXPECT_THROW(wrong.simulator().load(r), SnapshotError);
  }
  {
    // A simulator that already ran refuses to load.
    Scenario used(cfg);
    used.simulator().run_until(100 * kNsPerUs);
    ArchiveReader r(bytes);
    EXPECT_THROW(used.simulator().load(r), SnapshotError);
  }
}

TEST(SimSnapshot, SaveLoadSaveIsByteIdentical) {
  const ReplayConfig cfg = scenario_config("fault", 1);
  const auto [bytes, snap_at] = golden_snapshot(cfg, 400 * kNsPerUs);

  Scenario fresh(cfg);
  ArchiveReader r(bytes);
  fresh.simulator().load(r);
  ArchiveWriter w;
  fresh.simulator().save(w);
  EXPECT_EQ(w.finish(), bytes);
}

// The corrupt-input sweep: every truncation and every probed bit flip of a
// golden snapshot must be rejected cleanly — a SnapshotError, never UB, and
// never a partially mutated simulator.
TEST(SimSnapshot, TruncationAndBitFlipSweepRejectedWithoutPartialMutation) {
  const ReplayConfig cfg = scenario_config("fault", 1);
  const auto [bytes, snap_at] = golden_snapshot(cfg, 400 * kNsPerUs);
  ASSERT_GT(bytes.size(), 1000u);

  // Sanity: the intact archive loads.
  {
    Scenario fresh(cfg);
    ArchiveReader r(bytes);
    fresh.simulator().load(r);
  }

  // Truncations: the reader authenticates the whole file up front, so every
  // cut fails at construction.
  for (std::size_t keep = 0; keep < bytes.size();
       keep += std::max<std::size_t>(1, bytes.size() / 41)) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(ArchiveReader{std::move(cut)}, SnapshotError) << "kept " << keep << " bytes";
  }

  // Bit flips, probing every region of the file. Payload flips are caught
  // by the per-section checksums at construction; header/table flips fail
  // construction or surface as a missing/mismatched section in load() —
  // before the simulator commits anything.
  std::size_t flips = 0, caught_in_ctor = 0, caught_in_load = 0;
  for (std::size_t pos = 0; pos < bytes.size(); pos += 97, ++flips) {
    std::vector<std::uint8_t> corrupt = bytes;
    corrupt[pos] ^= static_cast<std::uint8_t>(1u << (pos % 8));
    try {
      ArchiveReader r(std::move(corrupt));
      Scenario fresh(cfg);
      const std::uint64_t before = fresh.simulator().state_digest();
      try {
        fresh.simulator().load(r);
        FAIL() << "undetected bit flip at byte " << pos;
      } catch (const SnapshotError&) {
        ++caught_in_load;
        // The failed load left the simulator untouched.
        EXPECT_EQ(fresh.simulator().state_digest(), before) << "partial mutation, byte " << pos;
      }
    } catch (const SnapshotError&) {
      ++caught_in_ctor;
    }
  }
  EXPECT_EQ(caught_in_ctor + caught_in_load, flips);
  EXPECT_GT(caught_in_ctor, 0u);  // checksums did real work
}

// --- The headline acceptance test ------------------------------------------
// Straight-through run vs save-at-k / load-in-fresh-context / resume: the
// per-tick digest trail, the final state digest and the full RunMetrics must
// be bit-identical — fault-injection and GA-selection scenarios, 1 and 4
// threads.

class ResumeBitIdentical : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(ResumeBitIdentical, DigestsAndMetricsMatchStraightRun) {
  const auto& [name, threads] = GetParam();
  const ReplayConfig cfg = scenario_config(name, threads);

  Scenario straight(cfg);
  const ReplayResult full = straight.run();
  ASSERT_GE(full.digests.points.size(), 4u);
  const TimeNs end = full.digests.points.back().at;
  const TimeNs snap_at = (end / 2 / cfg.digest_every) * cfg.digest_every;
  ASSERT_GT(snap_at, 0);

  const auto [bytes, at] = golden_snapshot(cfg, snap_at);

  // If a CI job wants the snapshot as a failure artifact, park a copy.
  if (const char* dir = std::getenv("R2C2_SNAPSHOT_ARTIFACT_DIR")) {
    const std::string path = std::string(dir) + "/golden-" + name + "-t" +
                             std::to_string(threads) + ".snap";
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  Scenario fresh(cfg);
  ArchiveReader r(bytes);
  fresh.simulator().load(r);
  ASSERT_EQ(fresh.simulator().now(), snap_at);

  // The restored state digest equals the straight-through digest at snap_at.
  for (const auto& p : full.digests.points) {
    if (p.at == snap_at) EXPECT_EQ(fresh.simulator().state_digest(), p.digest);
  }

  const ReplayResult tail = fresh.run();
  DigestLog expected;
  for (const auto& p : full.digests.points) {
    if (p.at > snap_at) expected.points.push_back(p);
  }
  EXPECT_EQ(DigestLog::first_divergence(expected, tail.digests), -1);
  ASSERT_EQ(expected.points.size(), tail.digests.points.size());
  EXPECT_EQ(tail.final_digest, full.final_digest);
  EXPECT_EQ(tail.metrics_digest, full.metrics_digest);
  EXPECT_EQ(tail.metrics.sim_end, full.metrics.sim_end);
  ASSERT_EQ(tail.metrics.flows.size(), full.metrics.flows.size());
  for (std::size_t i = 0; i < full.metrics.flows.size(); ++i) {
    EXPECT_EQ(tail.metrics.flows[i].completed, full.metrics.flows[i].completed) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Scenarios, ResumeBitIdentical,
                         ::testing::Values(std::make_pair("fault", 1),
                                           std::make_pair("fault", 4),
                                           std::make_pair("ga", 1), std::make_pair("ga", 4)),
                         [](const auto& info) {
                           return std::string(info.param.first) + "_t" +
                                  std::to_string(info.param.second);
                         });

// GA thread counts must not merely each be self-consistent: 1-thread and
// 4-thread GA scenarios are the *same* run (Section 3.4's deterministic
// parallel fitness evaluation), so their digests agree across thread counts.
TEST(SimSnapshot, GaScenarioIdenticalAcrossThreadCounts) {
  Scenario one(scenario_config("ga", 1));
  Scenario four(scenario_config("ga", 4));
  const ReplayResult a = one.run();
  const ReplayResult b = four.run();
  EXPECT_EQ(DigestLog::first_divergence(a.digests, b.digests), -1);
  EXPECT_EQ(a.digests.points.size(), b.digests.points.size());
  EXPECT_EQ(a.final_digest, b.final_digest);
  EXPECT_EQ(a.metrics_digest, b.metrics_digest);
}

}  // namespace
}  // namespace r2c2
