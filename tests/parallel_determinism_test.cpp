// The parallel evaluation plane must be invisible in results: the GA
// returns a bit-identical SelectionResult for every thread count, and the
// fitness memo survives 64-bit hash collisions (keyed lookups compare the
// genotype, not just the hash).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "control/route_selection.h"
#include "topology/topology.h"

namespace r2c2 {
namespace {

std::vector<FlowSpec> permutation_like_flows(const Topology& topo, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FlowSpec> flows;
  for (int i = 0; i < n; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
    do {
      f.dst = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
    } while (f.dst == f.src);
    f.alg = RouteAlg::kRps;
    f.weight = 1.0;
    f.priority = 0;
    f.demand = kUnlimitedDemand;
    flows.push_back(f);
  }
  return flows;
}

void expect_identical(const SelectionResult& a, const SelectionResult& b, int threads) {
  EXPECT_EQ(a.assignment, b.assignment) << "threads=" << threads;
  EXPECT_EQ(a.utility, b.utility) << "threads=" << threads;  // bitwise, not near
  EXPECT_EQ(a.evaluations, b.evaluations) << "threads=" << threads;
}

TEST(ParallelDeterminism, GaIsBitIdenticalAcrossThreadCounts) {
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  const auto flows = permutation_like_flows(topo, 80, 0xfeed);

  SelectionConfig cfg;
  cfg.choices = {RouteAlg::kRps, RouteAlg::kVlb};
  cfg.population = 30;
  cfg.max_generations = 8;
  cfg.stall_generations = 4;
  cfg.seed = 7;

  cfg.threads = 1;
  const SelectionResult serial = select_routes_ga(router, flows, cfg);
  EXPECT_GT(serial.utility, 0.0);
  EXPECT_GT(serial.evaluations, 0);

  std::vector<int> counts{2, 4, 8};
  // CI legs pin an extra count (e.g. the runner's core count) via env.
  if (const char* env = std::getenv("R2C2_TEST_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) counts.push_back(v);
  }
  for (const int threads : counts) {
    cfg.threads = threads;
    expect_identical(select_routes_ga(router, flows, cfg), serial, threads);
  }
}

TEST(ParallelDeterminism, UtilityKindsAreBitIdenticalAcrossThreadCounts) {
  // The speculative-breeding path must stay invisible for every utility:
  // kMinThroughput and the blended scalarization produce many fitness
  // ties and near-ties, the worst case for tournament mispredictions.
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  const auto flows = permutation_like_flows(topo, 60, 0x5eed);

  for (const UtilityKind kind : {UtilityKind::kMinThroughput, UtilityKind::kBlended}) {
    SelectionConfig cfg;
    cfg.utility = kind;
    cfg.blend_min_weight = 0.25;
    cfg.population = 24;
    cfg.max_generations = 6;
    cfg.stall_generations = 4;
    cfg.seed = 21;

    cfg.threads = 1;
    const SelectionResult serial = select_routes_ga(router, flows, cfg);
    for (const int threads : {2, 4}) {
      cfg.threads = threads;
      expect_identical(select_routes_ga(router, flows, cfg), serial, threads);
    }
  }
}

TEST(ParallelDeterminism, HybridIsBitIdenticalAcrossThreadCounts) {
  // The memetic local-search step evaluates serially through the memo
  // between parallel generation batches; the interleaving is fixed, so
  // the hybrid inherits the GA's thread-count invariance.
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  const auto flows = permutation_like_flows(topo, 60, 0x4b1d);

  SelectionConfig cfg;
  cfg.population = 24;
  cfg.max_generations = 6;
  cfg.stall_generations = 4;
  cfg.ls_elites = 3;
  cfg.ls_steps = 8;
  cfg.eval_budget = 400;
  cfg.seed = 33;

  cfg.threads = 1;
  const SelectionResult serial = select_routes_hybrid(router, flows, cfg);
  EXPECT_GT(serial.utility, 0.0);
  for (const int threads : {2, 4}) {
    cfg.threads = threads;
    expect_identical(select_routes_hybrid(router, flows, cfg), serial, threads);
  }
}

TEST(ParallelDeterminism, AnnealIgnoresThreadConfig) {
  // Simulated annealing is inherently sequential (each move depends on
  // the last accept); it must give one answer regardless of how the
  // caller configured parallelism.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  const auto flows = permutation_like_flows(topo, 30, 0xa11);

  SelectionConfig cfg;
  cfg.eval_budget = 150;
  cfg.seed = 5;

  cfg.threads = 1;
  const SelectionResult serial = select_routes_anneal(router, flows, cfg);
  cfg.threads = 8;
  expect_identical(select_routes_anneal(router, flows, cfg), serial, 8);
}

TEST(ParallelDeterminism, GaWithTinyMemoStaysBitIdentical) {
  // A memo small enough to evict constantly changes which genotypes get
  // re-solved — but eviction order is fixed by insertion (= dedup) order,
  // which is thread-count independent, so the invariance must survive.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  const auto flows = permutation_like_flows(topo, 40, 0x71e);

  SelectionConfig cfg;
  cfg.population = 20;
  cfg.max_generations = 8;
  cfg.seed = 13;
  cfg.memo_max_entries = 8;  // far below one generation's distinct genotypes

  cfg.threads = 1;
  const SelectionResult serial = select_routes_ga(router, flows, cfg);
  EXPECT_GT(serial.stats.memo_evictions, 0u);
  for (const int threads : {2, 4}) {
    cfg.threads = threads;
    const SelectionResult parallel = select_routes_ga(router, flows, cfg);
    expect_identical(parallel, serial, threads);
    EXPECT_EQ(parallel.stats.memo_evictions, serial.stats.memo_evictions) << threads;
    EXPECT_EQ(parallel.stats.solves, serial.stats.solves) << threads;
  }

  // The budget actually constrains the run: more evaluations than an
  // unbounded memo needs (evicted genotypes recur and are re-solved).
  cfg.threads = 1;
  cfg.memo_max_entries = 0;
  const SelectionResult unbounded = select_routes_ga(router, flows, cfg);
  EXPECT_GT(serial.evaluations, unbounded.evaluations);
  EXPECT_EQ(unbounded.stats.memo_evictions, 0u);
}

TEST(ParallelDeterminism, GaWithExternalPoolMatchesSerial) {
  // Callers may hand the GA a long-lived pool instead of a thread count;
  // the result must not depend on which construction path was taken.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  const auto flows = permutation_like_flows(topo, 40, 0xbee);

  SelectionConfig cfg;
  cfg.choices = {RouteAlg::kRps, RouteAlg::kVlb, RouteAlg::kDor};
  cfg.population = 20;
  cfg.max_generations = 6;
  cfg.seed = 3;

  cfg.threads = 1;
  const SelectionResult serial = select_routes_ga(router, flows, cfg);

  ThreadPool pool(3);
  cfg.pool = &pool;
  expect_identical(select_routes_ga(router, flows, cfg), serial, pool.lanes());
  // The pool actually ran fitness work (not a silent serial fallback).
  EXPECT_GT(pool.stats().executed, 0u);
}

TEST(ParallelDeterminism, SelectionIsIndependentOfPriorRouterUse) {
  // A router warmed by a previous (different) flow set must give the same
  // selection as a cold one: entries are immutable and per-pair, so cache
  // state can never leak between computations.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const auto flows = permutation_like_flows(topo, 30, 0xabc);
  SelectionConfig cfg;
  cfg.population = 16;
  cfg.max_generations = 5;
  cfg.seed = 11;

  const Router cold(topo);
  const SelectionResult from_cold = select_routes_ga(cold, flows, cfg);

  const Router warmed(topo);
  warmed.precompute(RouteAlg::kRps);
  warmed.precompute(RouteAlg::kVlb);
  const SelectionResult from_warm = select_routes_ga(warmed, flows, cfg);
  expect_identical(from_warm, from_cold, 1);
}

TEST(FitnessMemo, CollidingHashesKeepSeparateEntries) {
  // Regression: the memo used to key by the 64-bit FNV hash alone, so two
  // genotypes with colliding hashes silently shared one fitness value.
  // Force a collision by inserting two different genotypes under the SAME
  // hash: lookups must compare the stored genotype and keep both.
  detail::FitnessMemo memo;
  const std::vector<std::uint8_t> a{0, 1, 0, 1};
  const std::vector<std::uint8_t> b{1, 0, 1, 0};
  const std::uint64_t forced_hash = 0x1234;

  memo.insert(forced_hash, a, 10.0);
  ASSERT_NE(memo.find(forced_hash, a), nullptr);
  EXPECT_EQ(*memo.find(forced_hash, a), 10.0);
  // b collides but was never inserted: must be a miss, not a's value.
  EXPECT_EQ(memo.find(forced_hash, b), nullptr);

  memo.insert(forced_hash, b, 20.0);
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(*memo.find(forced_hash, a), 10.0);
  EXPECT_EQ(*memo.find(forced_hash, b), 20.0);
}

TEST(FitnessMemo, FifoEvictionRespectsEntryBudget) {
  detail::FitnessMemo memo(/*max_bytes=*/0, /*max_entries=*/2);
  const std::vector<std::uint8_t> a{0}, b{1}, c{2};
  memo.insert(detail::FitnessMemo::hash(a), a, 1.0);
  memo.insert(detail::FitnessMemo::hash(b), b, 2.0);
  EXPECT_EQ(memo.size(), 2u);
  memo.insert(detail::FitnessMemo::hash(c), c, 3.0);  // evicts a (oldest)
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(memo.find(detail::FitnessMemo::hash(a), a), nullptr);
  EXPECT_NE(memo.find(detail::FitnessMemo::hash(b), b), nullptr);
  EXPECT_NE(memo.find(detail::FitnessMemo::hash(c), c), nullptr);
  EXPECT_EQ(memo.stats().evictions, 1u);
}

TEST(FitnessMemo, FifoEvictionUnderForcedCollisions) {
  // Colliding entries share one bucket; eviction must remove exactly the
  // oldest *entry* (by insertion sequence), not the whole bucket and not
  // a same-hash newer entry.
  detail::FitnessMemo memo(/*max_bytes=*/0, /*max_entries=*/2);
  const std::vector<std::uint8_t> a{0, 1}, b{1, 0}, c{1, 1};
  const std::uint64_t shared = 0xc011;
  memo.insert(shared, a, 1.0);
  memo.insert(shared, b, 2.0);
  memo.insert(shared, c, 3.0);  // evicts a, keeps b and c in the bucket
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(memo.find(shared, a), nullptr);
  ASSERT_NE(memo.find(shared, b), nullptr);
  EXPECT_EQ(*memo.find(shared, b), 2.0);
  ASSERT_NE(memo.find(shared, c), nullptr);
  EXPECT_EQ(*memo.find(shared, c), 3.0);
}

TEST(FitnessMemo, ByteBudgetAccountsOverheadAndKeepsNewestEntry) {
  // Budget below one entry's cost: the just-inserted entry must survive
  // (the memo never evicts down to zero), evicting everything older.
  detail::FitnessMemo memo(/*max_bytes=*/1, /*max_entries=*/0);
  const std::vector<std::uint8_t> a{0}, b{1};
  memo.insert(detail::FitnessMemo::hash(a), a, 1.0);
  EXPECT_EQ(memo.size(), 1u);
  EXPECT_EQ(memo.bytes(), 1 + detail::FitnessMemo::kEntryOverhead);
  memo.insert(detail::FitnessMemo::hash(b), b, 2.0);
  EXPECT_EQ(memo.size(), 1u);
  EXPECT_EQ(memo.find(detail::FitnessMemo::hash(a), a), nullptr);
  EXPECT_NE(memo.find(detail::FitnessMemo::hash(b), b), nullptr);
}

TEST(FitnessMemo, StatsCountHitsMissesAndSizes) {
  detail::FitnessMemo memo;
  const std::vector<std::uint8_t> a{7, 7, 7};
  memo.record_miss();
  memo.insert(detail::FitnessMemo::hash(a), a, 4.0);
  memo.record_hit();
  memo.record_hit();
  const auto s = memo.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.bytes, 3 + detail::FitnessMemo::kEntryOverhead);
}

TEST(FitnessMemo, HashIsOrderSensitiveFnv) {
  const std::vector<std::uint8_t> a{0, 1};
  const std::vector<std::uint8_t> b{1, 0};
  EXPECT_NE(detail::FitnessMemo::hash(a), detail::FitnessMemo::hash(b));
  EXPECT_EQ(detail::FitnessMemo::hash(a), detail::FitnessMemo::hash(a));
}

}  // namespace
}  // namespace r2c2
