// The parallel evaluation plane must be invisible in results: the GA
// returns a bit-identical SelectionResult for every thread count, and the
// fitness memo survives 64-bit hash collisions (keyed lookups compare the
// genotype, not just the hash).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "control/route_selection.h"
#include "topology/topology.h"

namespace r2c2 {
namespace {

std::vector<FlowSpec> permutation_like_flows(const Topology& topo, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FlowSpec> flows;
  for (int i = 0; i < n; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
    do {
      f.dst = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
    } while (f.dst == f.src);
    f.alg = RouteAlg::kRps;
    f.weight = 1.0;
    f.priority = 0;
    f.demand = kUnlimitedDemand;
    flows.push_back(f);
  }
  return flows;
}

void expect_identical(const SelectionResult& a, const SelectionResult& b, int threads) {
  EXPECT_EQ(a.assignment, b.assignment) << "threads=" << threads;
  EXPECT_EQ(a.utility, b.utility) << "threads=" << threads;  // bitwise, not near
  EXPECT_EQ(a.evaluations, b.evaluations) << "threads=" << threads;
}

TEST(ParallelDeterminism, GaIsBitIdenticalAcrossThreadCounts) {
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  const auto flows = permutation_like_flows(topo, 80, 0xfeed);

  SelectionConfig cfg;
  cfg.choices = {RouteAlg::kRps, RouteAlg::kVlb};
  cfg.population = 30;
  cfg.max_generations = 8;
  cfg.stall_generations = 4;
  cfg.seed = 7;

  cfg.threads = 1;
  const SelectionResult serial = select_routes_ga(router, flows, cfg);
  EXPECT_GT(serial.utility, 0.0);
  EXPECT_GT(serial.evaluations, 0);

  std::vector<int> counts{2, 4, 8};
  // CI legs pin an extra count (e.g. the runner's core count) via env.
  if (const char* env = std::getenv("R2C2_TEST_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) counts.push_back(v);
  }
  for (const int threads : counts) {
    cfg.threads = threads;
    expect_identical(select_routes_ga(router, flows, cfg), serial, threads);
  }
}

TEST(ParallelDeterminism, GaWithExternalPoolMatchesSerial) {
  // Callers may hand the GA a long-lived pool instead of a thread count;
  // the result must not depend on which construction path was taken.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  const auto flows = permutation_like_flows(topo, 40, 0xbee);

  SelectionConfig cfg;
  cfg.choices = {RouteAlg::kRps, RouteAlg::kVlb, RouteAlg::kDor};
  cfg.population = 20;
  cfg.max_generations = 6;
  cfg.seed = 3;

  cfg.threads = 1;
  const SelectionResult serial = select_routes_ga(router, flows, cfg);

  ThreadPool pool(3);
  cfg.pool = &pool;
  expect_identical(select_routes_ga(router, flows, cfg), serial, pool.lanes());
  // The pool actually ran fitness work (not a silent serial fallback).
  EXPECT_GT(pool.stats().executed, 0u);
}

TEST(ParallelDeterminism, SelectionIsIndependentOfPriorRouterUse) {
  // A router warmed by a previous (different) flow set must give the same
  // selection as a cold one: entries are immutable and per-pair, so cache
  // state can never leak between computations.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const auto flows = permutation_like_flows(topo, 30, 0xabc);
  SelectionConfig cfg;
  cfg.population = 16;
  cfg.max_generations = 5;
  cfg.seed = 11;

  const Router cold(topo);
  const SelectionResult from_cold = select_routes_ga(cold, flows, cfg);

  const Router warmed(topo);
  warmed.precompute(RouteAlg::kRps);
  warmed.precompute(RouteAlg::kVlb);
  const SelectionResult from_warm = select_routes_ga(warmed, flows, cfg);
  expect_identical(from_warm, from_cold, 1);
}

TEST(FitnessMemo, CollidingHashesKeepSeparateEntries) {
  // Regression: the memo used to key by the 64-bit FNV hash alone, so two
  // genotypes with colliding hashes silently shared one fitness value.
  // Force a collision by inserting two different genotypes under the SAME
  // hash: lookups must compare the stored genotype and keep both.
  detail::FitnessMemo memo;
  const std::vector<std::uint8_t> a{0, 1, 0, 1};
  const std::vector<std::uint8_t> b{1, 0, 1, 0};
  const std::uint64_t forced_hash = 0x1234;

  memo.insert(forced_hash, a, 10.0);
  ASSERT_NE(memo.find(forced_hash, a), nullptr);
  EXPECT_EQ(*memo.find(forced_hash, a), 10.0);
  // b collides but was never inserted: must be a miss, not a's value.
  EXPECT_EQ(memo.find(forced_hash, b), nullptr);

  memo.insert(forced_hash, b, 20.0);
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(*memo.find(forced_hash, a), 10.0);
  EXPECT_EQ(*memo.find(forced_hash, b), 20.0);
}

TEST(FitnessMemo, HashIsOrderSensitiveFnv) {
  const std::vector<std::uint8_t> a{0, 1};
  const std::vector<std::uint8_t> b{1, 0};
  EXPECT_NE(detail::FitnessMemo::hash(a), detail::FitnessMemo::hash(b));
  EXPECT_EQ(detail::FitnessMemo::hash(a), detail::FitnessMemo::hash(a));
}

}  // namespace
}  // namespace r2c2
