#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "topology/topology.h"

namespace r2c2::sim {
namespace {

// --- Engine ---

TEST(Engine, ProcessesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, TiesBreakInScheduleOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(5, [&] { order.push_back(1); });
  e.schedule_at(5, [&] { order.push_back(2); });
  e.schedule_at(5, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// Satellite determinism check for the sharded engine's mailbox protocol:
// several cross-boundary packets share one arrival timestamp at one
// destination lane; their execution order is fixed by the (time, key)
// stamps allocated at post time, so it must match the 1-worker (serial
// window) order bit for bit at every worker count.
std::vector<int> run_boundary_tie_order(int workers) {
  constexpr int kShards = 8;
  Engine e;
  e.configure_shards(kShards, workers, /*lookahead=*/10);
  struct Mail {
    TimeNs at;
    std::uint64_t key;
    int tag;
  };
  // box[src][dst]: written by the src lane inside the window, drained by
  // the dst lane's owner at the barrier — the same single-writer protocol
  // the network's mailboxes use.
  std::array<std::array<std::vector<Mail>, kShards>, kShards> box{};
  std::vector<int> delivered;  // appended only by lane 0 events
  e.set_lane_drain([&](int dst) {
    for (int src = 0; src < kShards; ++src) {
      auto& cell = box[static_cast<std::size_t>(src)][static_cast<std::size_t>(dst)];
      for (const Mail& m : cell) {
        const int tag = m.tag;
        e.schedule_keyed(dst, m.at, m.key, EventDesc{},
                         [&delivered, tag] { delivered.push_back(tag); });
      }
      cell.clear();
    }
  });
  auto post = [&](int dst, TimeNs at, int tag) {
    const auto src = static_cast<std::size_t>(e.current_lane());
    box[src][static_cast<std::size_t>(dst)].push_back({at, e.alloc_key(), tag});
  };
  // Three boundary packets from three shards, all arriving on lane 0 at
  // t = 15; lane 5 posts a second one from a later event in the same
  // window (a later per-lane sequence number, so it sorts last).
  e.schedule_on(1, 5, EventDesc{}, [&] { post(0, 15, 101); });
  e.schedule_on(3, 5, EventDesc{}, [&] { post(0, 15, 103); });
  e.schedule_on(5, 5, EventDesc{}, [&] {
    post(0, 15, 105);
    e.schedule_at(6, [&] { post(0, 15, 205); });
  });
  e.run();
  return delivered;
}

TEST(Engine, BoundaryPacketTieOrderMatchesSerialAtEveryWorkerCount) {
  const std::vector<int> want = run_boundary_tie_order(1);
  // Keys sort by (origin sequence, origin lane): the same-time ties land
  // in origin-lane order, with the later post from lane 5 last.
  EXPECT_EQ(want, (std::vector<int>{101, 103, 105, 205}));
  for (const int workers : {2, 4, 8}) {
    EXPECT_EQ(run_boundary_tie_order(workers), want) << "workers=" << workers;
  }
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) e.schedule_in(10, chain);
  };
  e.schedule_at(0, chain);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(e.now(), 40);
}

TEST(Engine, RunUntilStopsEarly) {
  Engine e;
  int fired = 0;
  e.schedule_at(10, [&] { ++fired; });
  e.schedule_at(100, [&] { ++fired; });
  e.run(50);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(e.empty());
}

TEST(Engine, PastSchedulingClampsToNow) {
  Engine e;
  TimeNs seen = -1;
  e.schedule_at(50, [&] {
    e.schedule_at(10, [&] { seen = e.now(); });  // in the past
  });
  e.run();
  EXPECT_EQ(seen, 50);
  // Clamps are no longer silent: the per-lane counter records each one.
  EXPECT_EQ(e.clamped_schedules(), 1u);
  EXPECT_EQ(e.lane_stats(0).clamped, 1u);
}

TEST(Engine, CountsEvents) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.total_events(), 7u);
}

// --- Action (small-buffer-optimized callable) ---

TEST(Action, LargeCapturesFallBackToHeapAndStillRun) {
  Engine e;
  // 256 bytes of captured state: far beyond the inline buffer.
  std::array<std::uint64_t, 32> big{};
  big.fill(7);
  std::uint64_t sum = 0;
  e.schedule_at(1, [big, &sum] {
    for (const auto v : big) sum += v;
  });
  e.run();
  EXPECT_EQ(sum, 32u * 7u);
}

TEST(Action, DestroysCaptureExactlyOnceAcrossHeapMoves) {
  // shared_ptr use_count tracks copies; after the engine drains, only the
  // local reference remains — the event's capture was destroyed despite
  // all the moves the binary heap performs.
  auto token = std::make_shared<int>(42);
  {
    Engine e;
    // Interleave enough events to force heap sift-up/down moves.
    for (int i = 9; i >= 0; --i) {
      e.schedule_at(i, [token] { ASSERT_EQ(*token, 42); });
    }
    EXPECT_EQ(token.use_count(), 11);
    e.run();
    EXPECT_EQ(token.use_count(), 1);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(Action, MoveTransfersOwnership) {
  int fired = 0;
  Action a([&fired] { ++fired; });
  Action b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): testing moved-from state
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);
  Action c;
  c = std::move(b);
  c();
  EXPECT_EQ(fired, 2);
}

TEST(Action, PendingActionsDestroyedWithEngine) {
  auto token = std::make_shared<int>(1);
  {
    Engine e;
    e.schedule_at(10, [token] {});
    EXPECT_EQ(token.use_count(), 2);
    // Never run: the engine's destructor must release the capture.
  }
  EXPECT_EQ(token.use_count(), 1);
}

// --- Network ---

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : topo_(make_torus({4}, 10 * kGbps, 100)) {}

  SimPacket data_packet(const Path& path, std::uint32_t bytes) {
    SimPacket p;
    p.type = PacketType::kData;
    p.flow = 1;
    p.src = path.front();
    p.dst = path.back();
    p.payload = bytes - static_cast<std::uint32_t>(DataHeader::kWireSize);
    p.wire_bytes = bytes;
    p.route = encode_path(topo_, path);
    return p;
  }

  Topology topo_;
};

TEST_F(NetworkTest, SerializationPlusPropagationDelay) {
  Engine e;
  Network net(e, topo_, {});
  TimeNs arrival = -1;
  NodeId where = kInvalidNode;
  net.set_deliver([&](NodeId at, SimPacket&&) {
    arrival = e.now();
    where = at;
  });
  net.forward(0, data_packet({0, 1}, 1500));
  e.run();
  // 1500 B at 10 Gbps = 1200 ns, plus 100 ns propagation.
  EXPECT_EQ(arrival, 1300);
  EXPECT_EQ(where, 1);
}

TEST_F(NetworkTest, MultiHopForwarding) {
  Engine e;
  Network net(e, topo_, {});
  TimeNs arrival = -1;
  net.set_deliver([&](NodeId at, SimPacket&& p) {
    if (p.ridx < p.route.length()) {
      net.forward(at, std::move(p));
    } else {
      arrival = e.now();
    }
  });
  net.forward(0, data_packet({0, 1, 2}, 1500));
  e.run();
  EXPECT_EQ(arrival, 2 * 1300);
}

TEST_F(NetworkTest, QueueingDelaysBackToBackPackets) {
  Engine e;
  Network net(e, topo_, {});
  std::vector<TimeNs> arrivals;
  net.set_deliver([&](NodeId, SimPacket&&) { arrivals.push_back(e.now()); });
  net.forward(0, data_packet({0, 1}, 1500));
  net.forward(0, data_packet({0, 1}, 1500));
  e.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[1] - arrivals[0], 1200);  // one serialization time apart
}

TEST_F(NetworkTest, FiniteBufferDropsData) {
  Engine e;
  Network net(e, topo_, {.data_buffer_bytes = 3000, .control_priority = false});
  int delivered = 0, dropped = 0;
  net.set_deliver([&](NodeId, SimPacket&&) { ++delivered; });
  net.set_drop([&](NodeId, const SimPacket&) { ++dropped; });
  // First packet starts transmitting immediately (not queued); the buffer
  // then holds two more.
  for (int i = 0; i < 5; ++i) net.forward(0, data_packet({0, 1}, 1500));
  e.run();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(dropped, 2);
  EXPECT_EQ(net.drops(), 2u);
}

TEST_F(NetworkTest, ControlPacketsBypassDataQueue) {
  Engine e;
  Network net(e, topo_, {.data_buffer_bytes = 0, .control_priority = true});
  std::vector<PacketType> order;
  net.set_deliver([&](NodeId, SimPacket&& p) { order.push_back(p.type); });
  net.forward(0, data_packet({0, 1}, 1500));  // starts transmitting
  net.forward(0, data_packet({0, 1}, 1500));  // queued
  SimPacket ctrl;
  ctrl.type = PacketType::kFlowStart;
  ctrl.wire_bytes = 16;
  const LinkId link = topo_.find_link(0, 1);
  net.send_on_link(link, std::move(ctrl));
  e.run();
  ASSERT_EQ(order.size(), 3u);
  // The control packet overtakes the queued data packet.
  EXPECT_EQ(order[1], PacketType::kFlowStart);
  EXPECT_EQ(net.total_control_bytes_sent(), 16u);
}

TEST_F(NetworkTest, MaxQueueTracksHighWaterMark) {
  Engine e;
  Network net(e, topo_, {});
  net.set_deliver([](NodeId, SimPacket&&) {});
  for (int i = 0; i < 4; ++i) net.forward(0, data_packet({0, 1}, 1500));
  e.run();
  const auto snapshot = net.max_queue_snapshot();
  // Three packets queued behind the first one transmitting.
  EXPECT_EQ(snapshot[topo_.find_link(0, 1)], 3u * 1500);
}

// --- ReorderTracker ---

TEST(ReorderTracker, InOrderNeverBuffers) {
  ReorderTracker t;
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(t.on_packet(i), 0u);
  EXPECT_EQ(t.max_depth(), 0u);
}

TEST(ReorderTracker, OutOfOrderBuffersAndDrains) {
  ReorderTracker t;
  EXPECT_EQ(t.on_packet(1), 1u);
  EXPECT_EQ(t.on_packet(2), 2u);
  EXPECT_EQ(t.on_packet(0), 0u);  // gap filled, buffer drains
  EXPECT_EQ(t.max_depth(), 2u);
}

TEST(ReorderTracker, DuplicatesIgnored) {
  ReorderTracker t;
  t.on_packet(0);
  EXPECT_EQ(t.on_packet(0), 0u);
  EXPECT_EQ(t.on_packet(1), 0u);
}

TEST(ReorderTracker, InterleavedGaps) {
  ReorderTracker t;
  t.on_packet(2);
  t.on_packet(4);
  t.on_packet(0);
  EXPECT_EQ(t.on_packet(1), 1u);  // drains 2, keeps 4
  EXPECT_EQ(t.on_packet(3), 0u);  // drains 4
  EXPECT_EQ(t.max_depth(), 2u);
}

// --- FlowRecord ---

TEST(FlowRecord, ThroughputFromFct) {
  FlowRecord r;
  r.bytes = 1'000'000;
  r.arrival = 0;
  r.completed = 8 * kNsPerMs;  // 8 Mbit in 8 ms = 1 Gbps
  EXPECT_TRUE(r.finished());
  EXPECT_NEAR(r.throughput_bps(), 1e9, 1e3);
}

TEST(FlowRecord, SelectorsSplitBySize) {
  RunMetrics m;
  FlowRecord small;
  small.bytes = 10 * 1024;
  small.arrival = 0;
  small.completed = 1000;
  FlowRecord big;
  big.bytes = 10 << 20;
  big.arrival = 0;
  big.completed = kNsPerMs;
  FlowRecord unfinished;
  unfinished.bytes = 5;
  m.flows = {small, big, unfinished};
  EXPECT_EQ(m.short_flow_fct_us().size(), 1u);
  EXPECT_EQ(m.long_flow_tput_gbps().size(), 1u);
}

}  // namespace
}  // namespace r2c2::sim
