#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/stats.h"
#include "workload/generator.h"
#include "workload/patterns.h"

namespace r2c2 {
namespace {

// --- Patterns (Fig. 2 inputs) ---

TEST(Patterns, UniformIsAllOrderedPairs) {
  const Topology t = make_torus({4, 4}, kGbps, 100);
  const auto pairs = pattern_pairs(t, TrafficPattern::kUniform);
  EXPECT_EQ(pairs.size(), 16u * 15);
}

TEST(Patterns, NearestNeighborMatchesDegree) {
  const Topology t = make_torus({4, 4}, kGbps, 100);
  const auto pairs = pattern_pairs(t, TrafficPattern::kNearestNeighbor);
  EXPECT_EQ(pairs.size(), t.num_links());
  for (const auto& [s, d] : pairs) EXPECT_EQ(t.distance(s, d), 1);
}

TEST(Patterns, BitComplementIsInvolutionPermutation) {
  const Topology t = make_torus({8, 8}, kGbps, 100);
  const auto pairs = pattern_pairs(t, TrafficPattern::kBitComplement);
  EXPECT_EQ(pairs.size(), 64u);  // no fixed points for bit complement
  std::map<NodeId, NodeId> map;
  for (const auto& [s, d] : pairs) map[s] = d;
  for (const auto& [s, d] : map) EXPECT_EQ(map.at(d), s);  // self-inverse
}

TEST(Patterns, BitComplementNeedsPowerOfTwo) {
  const Topology t = make_torus({3, 3}, kGbps, 100);
  EXPECT_THROW(pattern_pairs(t, TrafficPattern::kBitComplement), std::invalid_argument);
}

TEST(Patterns, TransposeSwapsCoordinates) {
  const Topology t = make_torus({8, 8}, kGbps, 100);
  const auto pairs = pattern_pairs(t, TrafficPattern::kTranspose);
  EXPECT_EQ(pairs.size(), 64u - 8);  // diagonal idles
  for (const auto& [s, d] : pairs) {
    const auto cs = t.coords_of(s), cd = t.coords_of(d);
    EXPECT_EQ(cs[0], cd[1]);
    EXPECT_EQ(cs[1], cd[0]);
  }
}

TEST(Patterns, TransposeNeedsSquareGrid) {
  const Topology t = make_torus({4, 8}, kGbps, 100);
  EXPECT_THROW(pattern_pairs(t, TrafficPattern::kTranspose), std::invalid_argument);
}

TEST(Patterns, TornadoOffsetsHalfwayMinusOne) {
  const Topology t = make_torus({8, 8}, kGbps, 100);
  const auto pairs = pattern_pairs(t, TrafficPattern::kTornado);
  EXPECT_EQ(pairs.size(), 64u);
  for (const auto& [s, d] : pairs) {
    const auto cs = t.coords_of(s), cd = t.coords_of(d);
    EXPECT_EQ(cd[0], (cs[0] + 3) % 8);
    EXPECT_EQ(cd[1], (cs[1] + 3) % 8);
  }
}

TEST(Patterns, RandomPermutationIsPermutation) {
  const Topology t = make_torus({4, 4, 4}, kGbps, 100);
  Rng rng(5);
  const auto pairs = random_permutation_pairs(t, rng);
  std::set<NodeId> srcs, dsts;
  for (const auto& [s, d] : pairs) {
    EXPECT_NE(s, d);
    EXPECT_TRUE(srcs.insert(s).second);
    EXPECT_TRUE(dsts.insert(d).second);
  }
}

TEST(Patterns, PartialPermutationRespectsLoad) {
  const Topology t = make_torus({8, 8}, kGbps, 100);
  Rng rng(7);
  for (const double load : {0.125, 0.5, 1.0}) {
    const auto pairs = partial_permutation_pairs(t, load, rng);
    EXPECT_NEAR(static_cast<double>(pairs.size()), load * 64.0, 2.0) << load;
    std::set<NodeId> srcs, dsts;
    for (const auto& [s, d] : pairs) {
      EXPECT_NE(s, d);
      EXPECT_TRUE(srcs.insert(s).second) << "duplicate source";
      EXPECT_TRUE(dsts.insert(d).second) << "duplicate destination";
    }
  }
}

TEST(Patterns, PartialPermutationRejectsBadLoad) {
  const Topology t = make_torus({4, 4}, kGbps, 100);
  Rng rng(1);
  EXPECT_THROW(partial_permutation_pairs(t, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(partial_permutation_pairs(t, 1.5, rng), std::invalid_argument);
}

// --- Poisson / Pareto generator (Section 5.2 workload) ---

TEST(Generator, ArrivalsSortedAndPoissonLike) {
  WorkloadConfig cfg;
  cfg.num_nodes = 64;
  cfg.num_flows = 20000;
  cfg.mean_interarrival = 1 * kNsPerUs;
  const auto flows = generate_poisson_uniform(cfg);
  ASSERT_EQ(flows.size(), cfg.num_flows);
  RunningStats gaps;
  for (std::size_t i = 1; i < flows.size(); ++i) {
    ASSERT_GE(flows[i].start, flows[i - 1].start);
    gaps.add(static_cast<double>(flows[i].start - flows[i - 1].start));
  }
  EXPECT_NEAR(gaps.mean(), 1000.0, 30.0);
  // Exponential inter-arrival: stddev ~ mean.
  EXPECT_NEAR(gaps.stddev(), 1000.0, 60.0);
}

TEST(Generator, EndpointsValidAndDistinct) {
  WorkloadConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_flows = 5000;
  for (const auto& f : generate_poisson_uniform(cfg)) {
    EXPECT_LT(f.src, 16);
    EXPECT_LT(f.dst, 16);
    EXPECT_NE(f.src, f.dst);
  }
}

TEST(Generator, ParetoHeavyTailShape) {
  // "95% of the flows are less than 100 KB" (Section 5.2).
  WorkloadConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_flows = 50000;
  cfg.max_bytes = 0;  // uncapped for the distribution check
  const auto flows = generate_poisson_uniform(cfg);
  std::size_t below = 0;
  for (const auto& f : flows) below += (f.bytes < 100 * 1024);
  EXPECT_GT(static_cast<double>(below) / static_cast<double>(flows.size()), 0.93);
}

TEST(Generator, SizeCapsApply) {
  WorkloadConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_flows = 20000;
  cfg.max_bytes = 1 << 20;
  cfg.min_bytes = 128;
  for (const auto& f : generate_poisson_uniform(cfg)) {
    EXPECT_GE(f.bytes, 128u);
    EXPECT_LE(f.bytes, 1u << 20);
  }
}

TEST(Generator, FixedSizeDistribution) {
  WorkloadConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_flows = 100;
  cfg.size_dist = SizeDistribution::kFixed;
  cfg.mean_bytes = 10 << 20;
  cfg.max_bytes = 0;
  for (const auto& f : generate_poisson_uniform(cfg)) EXPECT_EQ(f.bytes, 10u << 20);
}

TEST(Generator, UncappedParetoExceedsDefaultCap) {
  // max_bytes = 0 disables the cap entirely: with enough draws the
  // Pareto(1.05) tail must produce flows past the default 30 MB ceiling,
  // and the floor still applies.
  WorkloadConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_flows = 200000;
  cfg.max_bytes = 0;
  std::uint64_t largest = 0;
  for (const auto& f : generate_poisson_uniform(cfg)) {
    EXPECT_GE(f.bytes, cfg.min_bytes);
    largest = std::max(largest, f.bytes);
  }
  EXPECT_GT(largest, 30ull << 20);
}

TEST(Generator, MinAboveMeanStillHonored) {
  // A floor above the mean is unusual but legal: every Pareto draw below
  // it clamps up, so all sizes land in [min_bytes, max_bytes] even though
  // min_bytes > mean_bytes.
  WorkloadConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_flows = 5000;
  cfg.mean_bytes = 10.0 * 1024.0;
  cfg.min_bytes = 64 * 1024;
  cfg.max_bytes = 1 << 20;
  std::size_t at_floor = 0;
  for (const auto& f : generate_poisson_uniform(cfg)) {
    EXPECT_GE(f.bytes, cfg.min_bytes);
    EXPECT_LE(f.bytes, cfg.max_bytes);
    at_floor += (f.bytes == cfg.min_bytes);
  }
  // With the mean far below the floor, the overwhelming majority clamp.
  EXPECT_GT(static_cast<double>(at_floor) / 5000.0, 0.9);
}

TEST(Generator, Deterministic) {
  WorkloadConfig cfg;
  cfg.num_nodes = 16;
  cfg.num_flows = 100;
  const auto a = generate_poisson_uniform(cfg);
  const auto b = generate_poisson_uniform(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
}

TEST(Generator, ExactStreamDeterminism) {
  // Two identically-seeded generators must agree on *every* field of
  // *every* arrival — not just the spot-checked ones. Any hidden
  // nondeterminism (iteration order, uninitialized fields) breaks the
  // snapshot/replay machinery downstream.
  WorkloadConfig cfg;
  cfg.num_nodes = 32;
  cfg.num_flows = 10000;
  cfg.seed = 97;
  const auto a = generate_poisson_uniform(cfg);
  const auto b = generate_poisson_uniform(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start) << i;
    EXPECT_EQ(a[i].src, b[i].src) << i;
    EXPECT_EQ(a[i].dst, b[i].dst) << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << i;
    EXPECT_EQ(a[i].weight, b[i].weight) << i;
    EXPECT_EQ(a[i].priority, b[i].priority) << i;
    EXPECT_EQ(a[i].alg, b[i].alg) << i;
  }
  // A different seed must actually change the stream.
  cfg.seed = 98;
  const auto c = generate_poisson_uniform(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i) {
    differs = a[i].start != c[i].start || a[i].bytes != c[i].bytes;
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, RejectsTooFewNodes) {
  WorkloadConfig cfg;
  cfg.num_nodes = 1;
  EXPECT_THROW(generate_poisson_uniform(cfg), std::invalid_argument);
}

TEST(TwoClass, ByteFractionHonored) {
  // Fig. 9's knob: the fraction of bytes carried by small flows.
  for (const double frac : {0.05, 0.25, 0.5}) {
    TwoClassConfig cfg;
    cfg.num_nodes = 64;
    cfg.small_byte_fraction = frac;
    cfg.total_bytes = 4ull << 30;
    const auto flows = generate_two_class(cfg);
    std::uint64_t small = 0, total = 0;
    for (const auto& f : flows) {
      total += f.bytes;
      if (f.bytes == cfg.small_bytes) small += f.bytes;
    }
    EXPECT_NEAR(static_cast<double>(small) / static_cast<double>(total), frac, 0.02) << frac;
  }
}

TEST(TwoClass, SmallFlowsDominateCount) {
  // 5% of bytes in 10 KB flows still means the vast majority of *flows*
  // are small — the datacenter regime [25].
  TwoClassConfig cfg;
  cfg.num_nodes = 64;
  cfg.small_byte_fraction = 0.05;
  const auto flows = generate_two_class(cfg);
  std::size_t small = 0;
  for (const auto& f : flows) small += (f.bytes == cfg.small_bytes);
  EXPECT_GT(static_cast<double>(small) / static_cast<double>(flows.size()), 0.9);
}

TEST(TwoClass, RejectsBadFraction) {
  TwoClassConfig cfg;
  cfg.num_nodes = 4;
  cfg.small_byte_fraction = 1.2;
  EXPECT_THROW(generate_two_class(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace r2c2
