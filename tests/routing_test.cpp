#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "common/rng.h"
#include "routing/routing.h"
#include "topology/topology.h"

namespace r2c2 {
namespace {

bool path_follows_links(const Topology& t, const Path& p) {
  for (std::size_t i = 0; i + 1 < p.size(); ++i) {
    if (t.find_link(p[i], p[i + 1]) == kInvalidLink) return false;
  }
  return true;
}

// Flow conservation: at every node except src/dst, inbound fraction equals
// outbound fraction; fractions out of src sum to 1; into dst sum to 1.
void expect_conserved(const Topology& t, const LinkWeights& w, NodeId src, NodeId dst) {
  std::map<NodeId, double> net;  // out minus in
  for (const LinkFraction& lf : w) {
    const Link& l = t.link(lf.link);
    EXPECT_GT(lf.fraction, 0.0);
    // A fraction is an *expected traversal count*: VLB packets can cross a
    // link once per phase, so the bound is 2, not 1.
    EXPECT_LE(lf.fraction, 2.0 + 1e-9);
    net[l.from] += lf.fraction;
    net[l.to] -= lf.fraction;
  }
  // Net flux: +1 at the source, -1 at the destination, 0 elsewhere. (Gross
  // out-of-source can exceed 1 for VLB, whose phase-2 paths may pass back
  // through the source.)
  EXPECT_NEAR(net[src], 1.0, 1e-9);
  EXPECT_NEAR(net[dst], -1.0, 1e-9);
  for (const auto& [node, flux] : net) {
    if (node != src && node != dst) {
      EXPECT_NEAR(flux, 0.0, 1e-9) << "node " << node;
    }
  }
}

class RoutingOnTorus : public ::testing::TestWithParam<RouteAlg> {
 protected:
  RoutingOnTorus() : topo_(make_torus({4, 4, 4}, 10 * kGbps, 100)), router_(topo_) {}
  Topology topo_;
  Router router_;
};

TEST_P(RoutingOnTorus, PathsAreValid) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.uniform_int(topo_.num_nodes()));
    NodeId d;
    do {
      d = static_cast<NodeId>(rng.uniform_int(topo_.num_nodes()));
    } while (d == s);
    const Path p = router_.pick_path(GetParam(), s, d, rng, 42);
    ASSERT_GE(p.size(), 2u);
    EXPECT_EQ(p.front(), s);
    EXPECT_EQ(p.back(), d);
    EXPECT_TRUE(path_follows_links(topo_, p));
  }
}

TEST_P(RoutingOnTorus, WeightsConserveFlow) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.uniform_int(topo_.num_nodes()));
    NodeId d;
    do {
      d = static_cast<NodeId>(rng.uniform_int(topo_.num_nodes()));
    } while (d == s);
    expect_conserved(topo_, router_.link_weights(GetParam(), s, d, 7), s, d);
  }
}

TEST_P(RoutingOnTorus, ExpectedHopsAtLeastShortest) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.uniform_int(topo_.num_nodes()));
    NodeId d;
    do {
      d = static_cast<NodeId>(rng.uniform_int(topo_.num_nodes()));
    } while (d == s);
    EXPECT_GE(router_.expected_hops(GetParam(), s, d, 7),
              static_cast<double>(topo_.distance(s, d)) - 1e-9);
  }
}

TEST_P(RoutingOnTorus, SelfFlowHasNoWeights) {
  EXPECT_TRUE(router_.link_weights(GetParam(), 5, 5).empty());
  Rng rng(4);
  EXPECT_EQ(router_.pick_path(GetParam(), 5, 5, rng), Path{5});
}

INSTANTIATE_TEST_SUITE_P(AllAlgs, RoutingOnTorus,
                         ::testing::Values(RouteAlg::kRps, RouteAlg::kDor, RouteAlg::kVlb,
                                           RouteAlg::kWlb, RouteAlg::kEcmp),
                         [](const auto& info) { return std::string(to_string(info.param)); });

// --- Minimality ---

TEST(Routing, MinimalAlgsUseShortestPaths) {
  const Topology t = make_torus({4, 4, 4}, kGbps, 100);
  const Router router(t);
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const NodeId s = static_cast<NodeId>(rng.uniform_int(t.num_nodes()));
    NodeId d;
    do {
      d = static_cast<NodeId>(rng.uniform_int(t.num_nodes()));
    } while (d == s);
    const std::size_t min_len = static_cast<std::size_t>(t.distance(s, d)) + 1;
    EXPECT_EQ(router.pick_path(RouteAlg::kRps, s, d, rng).size(), min_len);
    EXPECT_EQ(router.pick_path(RouteAlg::kDor, s, d, rng).size(), min_len);
    EXPECT_EQ(router.pick_path(RouteAlg::kEcmp, s, d, rng, 3).size(), min_len);
  }
}

TEST(Routing, DorIsDeterministic) {
  const Topology t = make_torus({8, 8}, kGbps, 100);
  const Router router(t);
  Rng a(1), b(999);
  EXPECT_EQ(router.pick_path(RouteAlg::kDor, 3, 60, a), router.pick_path(RouteAlg::kDor, 3, 60, b));
}

TEST(Routing, DorCorrectsDimensionsInOrder) {
  const Topology t = make_torus({4, 4}, kGbps, 100);
  const Router router(t);
  Rng rng(1);
  // From (0,0) to (2,2): the x coordinate is fully corrected before y
  // moves (either way around each ring — 2 == k/2 is a tie).
  const Path p = router.pick_path(RouteAlg::kDor, t.node_at(std::vector<int>{0, 0}),
                                  t.node_at(std::vector<int>{2, 2}), rng);
  ASSERT_EQ(p.size(), 5u);
  EXPECT_EQ(t.coords_of(p[1])[1], 0);  // still moving in x
  EXPECT_EQ(t.coords_of(p[2]), (std::vector<int>{2, 0}));  // x done
  EXPECT_EQ(t.coords_of(p[3])[0], 2);  // now moving in y
}

TEST(Routing, DorTakesShorterWayAround) {
  const Topology t = make_torus({8}, kGbps, 100);
  const Router router(t);
  Rng rng(1);
  // 0 -> 6 is 2 hops backwards around the ring, not 6 forwards.
  EXPECT_EQ(router.pick_path(RouteAlg::kDor, 0, 6, rng).size(), 3u);
}

TEST(Routing, EcmpIsPerFlowStable) {
  const Topology t = make_torus({4, 4, 4}, kGbps, 100);
  const Router router(t);
  Rng rng(1);
  const Path p1 = router.pick_path(RouteAlg::kEcmp, 0, 42, rng, /*flow=*/9);
  const Path p2 = router.pick_path(RouteAlg::kEcmp, 0, 42, rng, /*flow=*/9);
  EXPECT_EQ(p1, p2);
  // Different flows between the same endpoints spread over paths.
  bool differs = false;
  for (FlowId f = 0; f < 32 && !differs; ++f) {
    differs = router.pick_path(RouteAlg::kEcmp, 0, 42, rng, f) != p1;
  }
  EXPECT_TRUE(differs);
}

TEST(Routing, RpsSplitsEquallyOnTwoPathMesh) {
  // Fig. 3: a 2x2 mesh flow from corner to corner splits 50/50 over the two
  // two-hop paths, so each of the four links carries exactly half.
  const Topology t = make_mesh({2, 2}, kGbps, 100);
  const Router router(t);
  const LinkWeights w = router.link_weights(RouteAlg::kRps, 0, 3);
  ASSERT_EQ(w.size(), 4u);
  for (const LinkFraction& lf : w) EXPECT_NEAR(lf.fraction, 0.5, 1e-12);
}

TEST(Routing, RpsWeightsMatchEmpiricalPathSampling) {
  const Topology t = make_torus({4, 4}, kGbps, 100);
  const Router router(t);
  const NodeId s = 0, d = 5;  // (0,0) -> (1,1): two shortest paths
  std::map<LinkId, double> counts;
  Rng rng(17);
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const Path p = router.pick_path(RouteAlg::kRps, s, d, rng);
    for (std::size_t j = 0; j + 1 < p.size(); ++j) counts[t.find_link(p[j], p[j + 1])] += 1.0;
  }
  for (const LinkFraction& lf : router.link_weights(RouteAlg::kRps, s, d)) {
    EXPECT_NEAR(counts[lf.link] / kTrials, lf.fraction, 0.02);
  }
}

TEST(Routing, VlbWeightsMatchEmpiricalPathSampling) {
  const Topology t = make_torus({4, 4}, kGbps, 100);
  const Router router(t);
  const NodeId s = 0, d = 1;
  std::map<LinkId, double> counts;
  Rng rng(19);
  const int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) {
    const Path p = router.pick_path(RouteAlg::kVlb, s, d, rng);
    for (std::size_t j = 0; j + 1 < p.size(); ++j) counts[t.find_link(p[j], p[j + 1])] += 1.0;
  }
  for (const LinkFraction& lf : router.link_weights(RouteAlg::kVlb, s, d)) {
    EXPECT_NEAR(counts[lf.link] / kTrials, lf.fraction, 0.03) << "link " << lf.link;
  }
}

TEST(Routing, WlbWeightsMatchEmpiricalPathSampling) {
  const Topology t = make_torus({8, 8}, kGbps, 100);
  const Router router(t);
  const NodeId s = 0, d = 2;
  std::map<LinkId, double> counts;
  Rng rng(23);
  const int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) {
    const Path p = router.pick_path(RouteAlg::kWlb, s, d, rng);
    for (std::size_t j = 0; j + 1 < p.size(); ++j) counts[t.find_link(p[j], p[j + 1])] += 1.0;
  }
  for (const LinkFraction& lf : router.link_weights(RouteAlg::kWlb, s, d)) {
    EXPECT_NEAR(counts[lf.link] / kTrials, lf.fraction, 0.03) << "link " << lf.link;
  }
}

TEST(Routing, WlbPrefersShortWayAround) {
  // 0 -> 2 on an 8-ring: forward (2 hops) should carry 6/8 of the traffic,
  // backward (6 hops) 2/8.
  const Topology t = make_torus({8}, kGbps, 100);
  const Router router(t);
  Rng rng(29);
  int fwd = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const Path p = router.pick_path(RouteAlg::kWlb, 0, 2, rng);
    if (p.size() == 3) ++fwd;
  }
  EXPECT_NEAR(static_cast<double>(fwd) / kTrials, 0.75, 0.02);
}

TEST(Routing, VlbExpectedHopsApproxTwiceAverage) {
  // VLB doubles the average path length (two minimal phases via a random
  // waypoint).
  const Topology t = make_torus({4, 4, 4}, kGbps, 100);
  const Router router(t);
  const double mean = t.mean_shortest_path_hops();
  double total = 0.0;
  int pairs = 0;
  Rng rng(31);
  for (int i = 0; i < 30; ++i) {
    const NodeId s = static_cast<NodeId>(rng.uniform_int(t.num_nodes()));
    NodeId d;
    do {
      d = static_cast<NodeId>(rng.uniform_int(t.num_nodes()));
    } while (d == s);
    total += router.expected_hops(RouteAlg::kVlb, s, d);
    ++pairs;
  }
  EXPECT_NEAR(total / pairs, 2.0 * mean, 0.75);
}

TEST(Routing, CachedWeightsAreStableReferences) {
  const Topology t = make_torus({4, 4}, kGbps, 100);
  const Router router(t);
  const LinkWeights& a = router.link_weights(RouteAlg::kRps, 0, 5);
  // Populate many more entries; the first reference must stay valid.
  for (NodeId d = 1; d < t.num_nodes(); ++d) router.link_weights(RouteAlg::kRps, 0, d);
  const LinkWeights& b = router.link_weights(RouteAlg::kRps, 0, 5);
  EXPECT_EQ(&a, &b);
}

TEST(Routing, GeneralGraphFallbacks) {
  // DOR/VLB/WLB must work (minimally / generically) on a non-grid topology.
  const Topology t = make_folded_clos({.servers_per_leaf = 2,
                                       .num_leaves = 4,
                                       .num_spines = 2,
                                       .bandwidth = kGbps,
                                       .latency = 100});
  const Router router(t);
  Rng rng(37);
  for (const RouteAlg alg : {RouteAlg::kRps, RouteAlg::kDor, RouteAlg::kVlb, RouteAlg::kWlb}) {
    const Path p = router.pick_path(alg, 0, 7, rng);
    EXPECT_TRUE(path_follows_links(t, p)) << to_string(alg);
    EXPECT_EQ(p.back(), 7) << to_string(alg);
    expect_conserved(t, router.link_weights(alg, 0, 7), 0, 7);
  }
}

}  // namespace
}  // namespace r2c2
