#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "control/control_traffic.h"
#include "control/flow_table.h"
#include "control/route_selection.h"
#include "topology/topology.h"
#include "workload/patterns.h"

namespace r2c2 {
namespace {

BroadcastMsg start_msg(NodeId src, NodeId dst, std::uint8_t fseq, RouteAlg rp = RouteAlg::kRps) {
  BroadcastMsg m;
  m.type = PacketType::kFlowStart;
  m.src = src;
  m.dst = dst;
  m.fseq = fseq;
  m.weight = 1;
  m.rp = rp;
  return m;
}

// --- FlowTable ---

TEST(FlowTable, StartAddsFinishRemoves) {
  FlowTable table;
  table.apply(start_msg(1, 2, 0));
  EXPECT_EQ(table.size(), 1u);
  const auto spec = table.find(1, 0);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->src, 1);
  EXPECT_EQ(spec->dst, 2);
  EXPECT_EQ(spec->id, (1u << 16) | 0u);

  BroadcastMsg fin = start_msg(1, 2, 0);
  fin.type = PacketType::kFlowFinish;
  table.apply(fin);
  EXPECT_TRUE(table.empty());
}

TEST(FlowTable, FinishOfUnknownFlowIsNoop) {
  FlowTable table;
  BroadcastMsg fin = start_msg(9, 2, 3);
  fin.type = PacketType::kFlowFinish;
  table.apply(fin);
  EXPECT_TRUE(table.empty());
}

TEST(FlowTable, DistinctFseqKeepsConcurrentFlows) {
  FlowTable table;
  table.apply(start_msg(1, 2, 0));
  table.apply(start_msg(1, 2, 1));
  table.apply(start_msg(1, 3, 2));
  EXPECT_EQ(table.size(), 3u);
}

TEST(FlowTable, DemandUpdateChangesDemand) {
  FlowTable table;
  table.apply(start_msg(1, 2, 0));
  EXPECT_TRUE(std::isinf(table.find(1, 0)->demand));

  BroadcastMsg upd = start_msg(1, 2, 0);
  upd.type = PacketType::kDemandUpdate;
  upd.demand_kbps = 1'000'000;  // 1 Gbps
  table.apply(upd);
  EXPECT_NEAR(table.find(1, 0)->demand, 1 * kGbps, 1.0);

  upd.demand_kbps = 0;  // back to unlimited
  table.apply(upd);
  EXPECT_TRUE(std::isinf(table.find(1, 0)->demand));
}

TEST(FlowTable, DemandUpdateForUnknownFlowResurrectsEntry) {
  // Demand updates double as lease refreshes: a refresh for a flow whose
  // start broadcast was lost (corruption, failed link) re-inserts the
  // entry instead of being dropped, so views self-heal.
  FlowTable table;
  BroadcastMsg upd = start_msg(4, 2, 0);
  upd.type = PacketType::kDemandUpdate;
  upd.demand_kbps = 5;
  table.apply(upd, /*now=*/100);
  ASSERT_EQ(table.size(), 1u);
  const auto spec = table.find(4, 0);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->src, 4);
  EXPECT_EQ(spec->dst, 2);
  EXPECT_NEAR(spec->demand, 5 * kKbps, 1.0);
  EXPECT_EQ(table.lease_of(4, 0), 100);
}

TEST(FlowTable, ResurrectedEntryMatchesDirectInsertHash) {
  // A view that learned the flow via a late refresh must agree (view_hash)
  // with one that saw the original start, or reconvergence checks would
  // flag healed views as divergent forever.
  FlowTable via_start, via_refresh;
  BroadcastMsg start = start_msg(4, 2, 0);
  start.demand_kbps = 5;
  via_start.apply(start);
  BroadcastMsg upd = start;
  upd.type = PacketType::kDemandUpdate;
  via_refresh.apply(upd, /*now=*/777);  // lease stamps must not affect the hash
  EXPECT_EQ(via_start.view_hash(), via_refresh.view_hash());
}

TEST(FlowTable, RefreshUpdatesLeaseWithoutBumpingVersion) {
  FlowTable table;
  table.apply(start_msg(1, 2, 0), /*now=*/10);
  const auto version = table.version();
  const auto hash = table.view_hash();
  BroadcastMsg upd = start_msg(1, 2, 0);
  upd.type = PacketType::kDemandUpdate;
  upd.demand_kbps = 0;  // identical spec: a pure refresh
  table.apply(upd, /*now=*/500);
  EXPECT_EQ(table.lease_of(1, 0), 500);
  EXPECT_EQ(table.version(), version) << "pure refresh must not invalidate cached problems";
  EXPECT_EQ(table.view_hash(), hash);
}

TEST(FlowTable, LeaseNeverMovesBackwards) {
  FlowTable table;
  table.apply(start_msg(1, 2, 0), /*now=*/900);
  BroadcastMsg upd = start_msg(1, 2, 0);
  upd.type = PacketType::kDemandUpdate;
  table.apply(upd, /*now=*/400);  // reordered refresh from the past
  EXPECT_EQ(table.lease_of(1, 0), 900);
}

TEST(FlowTable, ExpireStaleCollectsOnlyExpiredAndNonImmune) {
  FlowTable table;
  table.apply(start_msg(1, 2, 0), /*now=*/0);    // stale ghost
  table.apply(start_msg(3, 4, 1), /*now=*/950);  // fresh
  table.apply(start_msg(5, 6, 2), /*now=*/0);    // stale but src-immune
  std::vector<FlowSpec> removed;
  const std::size_t n = table.expire_stale(/*now=*/1000, /*ttl=*/500, /*immune_src=*/5, &removed);
  EXPECT_EQ(n, 1u);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0].src, 1);
  EXPECT_FALSE(table.find(1, 0).has_value());
  EXPECT_TRUE(table.find(3, 1).has_value());
  EXPECT_TRUE(table.find(5, 2).has_value());
  EXPECT_EQ(table.ghosts_expired(), 1u);
}

TEST(FlowTable, ExpireRestoresEmptyViewHash) {
  FlowTable a;
  const std::uint64_t empty_hash = a.view_hash();
  a.apply(start_msg(1, 2, 0), /*now=*/0);
  a.expire_stale(/*now=*/1000, /*ttl=*/10);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.view_hash(), empty_hash);
}

TEST(FlowTable, FseqWraparoundReusesKeysWithoutCollision) {
  // Cycle far more than 256 flows through one (src, dst) pair — the wire
  // fseq is 8 bits, so keys are reused mod 256. Start/finish in lockstep
  // must never leave stale entries behind or collide on a reused key.
  FlowTable table;
  const std::uint64_t empty_hash = table.view_hash();
  for (int cycle = 0; cycle < 700; ++cycle) {
    const auto fseq = static_cast<std::uint8_t>(cycle & 0xff);
    table.apply(start_msg(7, 9, fseq), /*now=*/cycle);
    ASSERT_EQ(table.size(), 1u) << "cycle " << cycle;
    const auto spec = table.find(7, fseq);
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->id, (7u << 16) | fseq);
    BroadcastMsg fin = start_msg(7, 9, fseq);
    fin.type = PacketType::kFlowFinish;
    table.apply(fin);
    ASSERT_TRUE(table.empty()) << "cycle " << cycle;
  }
  EXPECT_EQ(table.view_hash(), empty_hash);
}

TEST(FlowTable, GhostOnReusedFseqIsReplacedByNewStart) {
  // A lost finish leaves a ghost on (src, fseq); when the fseq wraps around
  // and is reused by a *new* flow, the fresh start must overwrite the ghost
  // (same key, new dst) rather than duplicate or keep stale fields.
  FlowTable table;
  table.apply(start_msg(7, 9, 42), /*now=*/0);  // ghost: finish never arrives
  table.apply(start_msg(7, 11, 42), /*now=*/900);
  EXPECT_EQ(table.size(), 1u);
  const auto spec = table.find(7, 42);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->dst, 11);
  EXPECT_EQ(table.lease_of(7, 42), 900);
  // And the replacement refreshed the lease, so GC keeps the live flow.
  table.expire_stale(/*now=*/1000, /*ttl=*/500);
  EXPECT_TRUE(table.find(7, 42).has_value());
}

TEST(FlowTable, RouteUpdateChangesProtocol) {
  FlowTable table;
  table.apply(start_msg(1, 2, 0, RouteAlg::kRps));
  RouteUpdatePacket pkt;
  pkt.entries.push_back({1, 0, RouteAlg::kVlb});
  table.apply(pkt);
  EXPECT_EQ(table.find(1, 0)->alg, RouteAlg::kVlb);
}

TEST(FlowTable, ViewHashIsOrderIndependent) {
  FlowTable a, b;
  a.apply(start_msg(1, 2, 0));
  a.apply(start_msg(3, 4, 1));
  b.apply(start_msg(3, 4, 1));
  b.apply(start_msg(1, 2, 0));
  EXPECT_EQ(a.view_hash(), b.view_hash());
}

TEST(FlowTable, ViewHashReturnsAfterAddRemove) {
  FlowTable table;
  const std::uint64_t empty_hash = table.view_hash();
  table.apply(start_msg(1, 2, 0));
  EXPECT_NE(table.view_hash(), empty_hash);
  BroadcastMsg fin = start_msg(1, 2, 0);
  fin.type = PacketType::kFlowFinish;
  table.apply(fin);
  EXPECT_EQ(table.view_hash(), empty_hash);
}

TEST(FlowTable, ViewHashTracksFieldChanges) {
  FlowTable a, b;
  a.apply(start_msg(1, 2, 0, RouteAlg::kRps));
  b.apply(start_msg(1, 2, 0, RouteAlg::kVlb));
  EXPECT_NE(a.view_hash(), b.view_hash());
}

TEST(FlowTable, VersionMonotone) {
  FlowTable table;
  const auto v0 = table.version();
  table.apply(start_msg(1, 2, 0));
  EXPECT_GT(table.version(), v0);
}

TEST(FlowTable, SnapshotContainsAllFlows) {
  FlowTable table;
  for (std::uint8_t i = 0; i < 10; ++i) table.apply(start_msg(1, 2, i));
  EXPECT_EQ(table.snapshot().size(), 10u);
}

// --- Route selection ---

class RouteSelectionTest : public ::testing::Test {
 protected:
  RouteSelectionTest() : topo_(make_torus({4, 4}, 10 * kGbps, 100)), router_(topo_) {}

  std::vector<FlowSpec> permutation_flows(double load, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<FlowSpec> flows;
    FlowId id = 1;
    for (const auto& [s, d] : partial_permutation_pairs(topo_, load, rng)) {
      flows.push_back({id++, s, d, RouteAlg::kRps, 1.0, 0, kUnlimitedDemand});
    }
    return flows;
  }

  Topology topo_;
  Router router_;
};

TEST_F(RouteSelectionTest, GaNeverWorseThanStartingAssignment) {
  const auto flows = permutation_flows(0.5, 3);
  SelectionConfig cfg;
  cfg.population = 20;
  cfg.max_generations = 10;
  std::vector<RouteAlg> current(flows.size(), RouteAlg::kRps);
  const double base = route_assignment_utility(router_, flows, current, cfg.utility, cfg.alloc);
  const auto result = select_routes_ga(router_, flows, cfg);
  EXPECT_GE(result.utility, base - 1.0);
}

TEST_F(RouteSelectionTest, GaFindsExhaustiveOptimumOnTinyInstance) {
  const auto flows = permutation_flows(0.25, 5);  // 4 flows -> 16 assignments
  ASSERT_LE(flows.size(), 6u);
  SelectionConfig cfg;
  cfg.population = 30;
  cfg.max_generations = 20;
  const auto best = select_routes_exhaustive(router_, flows, cfg);
  const auto ga = select_routes_ga(router_, flows, cfg);
  EXPECT_NEAR(ga.utility, best.utility, best.utility * 1e-9);
}

TEST_F(RouteSelectionTest, GaBeatsOrMatchesSingleProtocols) {
  // The core Fig. 18 property: mixing protocols per flow is at least as
  // good as the best single-protocol assignment.
  for (const double load : {0.25, 0.75}) {
    const auto flows = permutation_flows(load, 11);
    SelectionConfig cfg;
    cfg.population = 40;
    cfg.max_generations = 15;
    cfg.seed = 7;
    const auto ga = select_routes_ga(router_, flows, cfg);
    const auto rps = uniform_assignment(router_, flows, RouteAlg::kRps, cfg);
    const auto vlb = uniform_assignment(router_, flows, RouteAlg::kVlb, cfg);
    EXPECT_GE(ga.utility, rps.utility * 0.999) << "load " << load;
    EXPECT_GE(ga.utility, vlb.utility * 0.999) << "load " << load;
  }
}

TEST_F(RouteSelectionTest, HillClimbImprovesOrEqualsBase) {
  const auto flows = permutation_flows(0.5, 13);
  SelectionConfig cfg;
  cfg.eval_budget = 200;
  std::vector<RouteAlg> current(flows.size(), RouteAlg::kRps);
  const double base = route_assignment_utility(router_, flows, current, cfg.utility, cfg.alloc);
  const auto hc = select_routes_hill_climb(router_, flows, cfg);
  EXPECT_GE(hc.utility, base - 1.0);
}

TEST_F(RouteSelectionTest, RandomSearchRespectsBudget) {
  const auto flows = permutation_flows(0.5, 17);
  SelectionConfig cfg;
  cfg.eval_budget = 10;
  const auto result = select_routes_random(router_, flows, cfg);
  EXPECT_LE(result.evaluations, 10);
  EXPECT_GT(result.utility, 0.0);
}

TEST_F(RouteSelectionTest, MinThroughputUtility) {
  const auto flows = permutation_flows(0.5, 19);
  SelectionConfig cfg;
  cfg.utility = UtilityKind::kMinThroughput;
  cfg.population = 20;
  cfg.max_generations = 8;
  const auto ga = select_routes_ga(router_, flows, cfg);
  const auto rps = uniform_assignment(router_, flows, RouteAlg::kRps, cfg);
  EXPECT_GE(ga.utility, rps.utility * 0.999);
}

TEST_F(RouteSelectionTest, AnnealFindsExhaustiveOptimumOnTinyInstance) {
  const auto flows = permutation_flows(0.25, 5);  // 4 flows -> 16 assignments
  ASSERT_LE(flows.size(), 6u);
  SelectionConfig cfg;
  cfg.eval_budget = 200;
  const auto best = select_routes_exhaustive(router_, flows, cfg);
  const auto sa = select_routes_anneal(router_, flows, cfg);
  EXPECT_NEAR(sa.utility, best.utility, best.utility * 1e-9);
  EXPECT_LE(sa.evaluations, cfg.eval_budget);
}

TEST_F(RouteSelectionTest, AnnealNeverWorseThanSingleProtocols) {
  // The walk starts from the best of the current and the uniform
  // single-protocol assignments, so this holds by construction.
  const auto flows = permutation_flows(0.75, 11);
  SelectionConfig cfg;
  cfg.eval_budget = 300;
  const auto sa = select_routes_anneal(router_, flows, cfg);
  const auto rps = uniform_assignment(router_, flows, RouteAlg::kRps, cfg);
  const auto vlb = uniform_assignment(router_, flows, RouteAlg::kVlb, cfg);
  EXPECT_GE(sa.utility, rps.utility * 0.999999);
  EXPECT_GE(sa.utility, vlb.utility * 0.999999);
}

TEST_F(RouteSelectionTest, HybridFindsExhaustiveOptimumOnTinyInstance) {
  const auto flows = permutation_flows(0.25, 5);
  ASSERT_LE(flows.size(), 6u);
  SelectionConfig cfg;
  cfg.population = 20;
  cfg.max_generations = 10;
  cfg.eval_budget = 400;
  const auto best = select_routes_exhaustive(router_, flows, cfg);
  const auto hybrid = select_routes_hybrid(router_, flows, cfg);
  EXPECT_NEAR(hybrid.utility, best.utility, best.utility * 1e-9);
}

TEST_F(RouteSelectionTest, HybridNeverWorseThanStartingAssignment) {
  const auto flows = permutation_flows(0.5, 13);
  SelectionConfig cfg;
  cfg.population = 20;
  cfg.max_generations = 8;
  cfg.eval_budget = 500;
  std::vector<RouteAlg> current(flows.size(), RouteAlg::kRps);
  const double base = route_assignment_utility(router_, flows, current, cfg.utility, cfg.alloc);
  const auto hybrid = select_routes_hybrid(router_, flows, cfg);
  EXPECT_GE(hybrid.utility, base - 1.0);
}

TEST_F(RouteSelectionTest, BlendedWeightEndpointsMatchSingleObjectives) {
  const auto flows = permutation_flows(0.5, 19);
  std::vector<RouteAlg> assign(flows.size(), RouteAlg::kRps);
  assign[0] = RouteAlg::kVlb;
  const double agg = route_assignment_utility(router_, flows, assign,
                                              UtilityKind::kAggregateThroughput);
  const double mn =
      route_assignment_utility(router_, flows, assign, UtilityKind::kMinThroughput);
  // w = 0: pure aggregate; w = 1: n * min (both bitwise, not approximate).
  EXPECT_EQ(route_assignment_utility(router_, flows, assign, UtilityKind::kBlended, {}, 0.0),
            agg);
  EXPECT_EQ(route_assignment_utility(router_, flows, assign, UtilityKind::kBlended, {}, 1.0),
            static_cast<double>(flows.size()) * mn);
}

TEST_F(RouteSelectionTest, BlendedSearchLiftsMinThroughput) {
  // The point of the scalarization: versus a pure-aggregate search, the
  // blended optimum's worst flow does at least as well. Exhaustive optima
  // on a tiny instance make this exact (no search noise).
  const auto flows = permutation_flows(0.3, 7);
  ASSERT_GE(flows.size(), 3u);
  ASSERT_LE(flows.size(), 8u);
  SelectionConfig cfg;
  cfg.utility = UtilityKind::kAggregateThroughput;
  const auto agg_opt = select_routes_exhaustive(router_, flows, cfg);
  cfg.utility = UtilityKind::kBlended;
  cfg.blend_min_weight = 0.9;
  const auto blend_opt = select_routes_exhaustive(router_, flows, cfg);

  const double min_agg = route_assignment_utility(router_, flows, agg_opt.assignment,
                                                  UtilityKind::kMinThroughput);
  const double min_blend = route_assignment_utility(router_, flows, blend_opt.assignment,
                                                    UtilityKind::kMinThroughput);
  EXPECT_GE(min_blend, min_agg * (1.0 - 1e-9));
}

TEST_F(RouteSelectionTest, InvalidBlendWeightRejected) {
  SelectionConfig cfg;
  cfg.utility = UtilityKind::kBlended;
  cfg.blend_min_weight = 1.5;
  EXPECT_THROW(select_routes_ga(router_, {}, cfg), std::invalid_argument);
}

TEST_F(RouteSelectionTest, EmptyChoicesRejected) {
  SelectionConfig cfg;
  cfg.choices.clear();
  EXPECT_THROW(select_routes_ga(router_, {}, cfg), std::invalid_argument);
}

TEST_F(RouteSelectionTest, ExhaustiveRejectsHugeSpace) {
  const auto flows = permutation_flows(1.0, 23);
  SelectionConfig cfg;
  cfg.choices = {RouteAlg::kRps, RouteAlg::kVlb, RouteAlg::kWlb};  // 3^15+ states
  ASSERT_GT(flows.size(), 12u);
  EXPECT_THROW(select_routes_exhaustive(router_, flows, cfg), std::length_error);
}

TEST_F(RouteSelectionTest, AssignmentSizeMismatchRejected) {
  const auto flows = permutation_flows(0.5, 29);
  std::vector<RouteAlg> wrong(flows.size() + 1, RouteAlg::kRps);
  EXPECT_THROW(
      route_assignment_utility(router_, flows, wrong, UtilityKind::kAggregateThroughput),
      std::invalid_argument);
}

// --- Control traffic model (Fig. 19) ---

TEST(ControlTraffic, DecentralizedIndependentOfFlowCount) {
  const Topology topo = make_torus({8, 8, 8}, 10 * kGbps, 100);
  const BroadcastTrees trees(topo, 1);
  EXPECT_EQ(decentralized_event_bytes(trees), 511u * 16);
}

TEST(ControlTraffic, CentralizedGrowsWithFlows) {
  const Topology topo = make_torus({8, 8, 8}, 10 * kGbps, 100);
  const CentralizedModel model;
  const auto few = centralized_event_bytes(topo, model, 100, 512, 1.0);
  const auto many = centralized_event_bytes(topo, model, 100, 512, 10.0);
  EXPECT_GT(many, few);
  EXPECT_GT(static_cast<double>(many) / static_cast<double>(few), 2.0);
}

TEST(ControlTraffic, CentralizedCheaperWithVeryFewSenders) {
  // With a handful of senders, unicasts beat an all-rack broadcast.
  const Topology topo = make_torus({8, 8, 8}, 10 * kGbps, 100);
  const BroadcastTrees trees(topo, 1);
  const CentralizedModel model;
  EXPECT_LT(centralized_event_bytes(topo, model, 100, 4, 1.0), decentralized_event_bytes(trees));
  EXPECT_GT(centralized_event_bytes(topo, model, 100, 512, 1.0), decentralized_event_bytes(trees));
}

}  // namespace
}  // namespace r2c2
