#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/r2c2_sim.h"
#include "transport/reliability.h"

namespace r2c2 {
namespace {

// --- ReliableReceiver ---

TEST(ReliableReceiver, InOrderAdvancesCumulative) {
  ReliableReceiver r(3000);
  r.on_data(0, 1000);
  EXPECT_EQ(r.cumulative(), 1000u);
  r.on_data(1000, 1000);
  r.on_data(2000, 1000);
  EXPECT_TRUE(r.complete());
  EXPECT_TRUE(r.sack_ranges(4).empty());
}

TEST(ReliableReceiver, OutOfOrderHeldInSack) {
  ReliableReceiver r(4000);
  r.on_data(2000, 1000);
  EXPECT_EQ(r.cumulative(), 0u);
  const auto sacks = r.sack_ranges(4);
  ASSERT_EQ(sacks.size(), 1u);
  EXPECT_EQ(sacks[0], (ByteRange{2000, 3000}));
  r.on_data(0, 1000);
  EXPECT_EQ(r.cumulative(), 1000u);
  r.on_data(1000, 1000);
  EXPECT_EQ(r.cumulative(), 3000u);  // merged through the held range
  EXPECT_TRUE(r.sack_ranges(4).empty());
}

TEST(ReliableReceiver, MergesAdjacentAndOverlapping) {
  ReliableReceiver r(10000);
  r.on_data(4000, 1000);
  r.on_data(6000, 1000);
  r.on_data(5000, 1000);  // bridges the two
  const auto sacks = r.sack_ranges(4);
  ASSERT_EQ(sacks.size(), 1u);
  EXPECT_EQ(sacks[0], (ByteRange{4000, 7000}));
  r.on_data(4500, 2000);  // fully contained duplicate
  EXPECT_EQ(r.received_bytes(), 3000u);
}

TEST(ReliableReceiver, DuplicatesDoNotInflate) {
  ReliableReceiver r(2000);
  r.on_data(0, 1000);
  r.on_data(0, 1000);
  r.on_data(500, 500);
  EXPECT_EQ(r.received_bytes(), 1000u);
  EXPECT_EQ(r.cumulative(), 1000u);
}

TEST(ReliableReceiver, RandomizedArrivalAlwaysCompletes) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t total = 50000;
    const std::uint32_t chunk = 1465;
    std::vector<std::uint64_t> offsets;
    for (std::uint64_t o = 0; o < total; o += chunk) offsets.push_back(o);
    for (std::size_t i = offsets.size(); i > 1; --i) {
      std::swap(offsets[i - 1], offsets[rng.uniform_int(i)]);
    }
    ReliableReceiver r(total);
    for (const auto o : offsets) {
      r.on_data(o, static_cast<std::uint32_t>(std::min<std::uint64_t>(chunk, total - o)));
      // Duplicate a random earlier chunk.
      const auto d = offsets[rng.uniform_int(offsets.size())];
      r.on_data(d, static_cast<std::uint32_t>(std::min<std::uint64_t>(chunk, total - d)));
    }
    EXPECT_TRUE(r.complete());
    EXPECT_EQ(r.received_bytes(), total);
  }
}

// --- ReliableSender ---

TEST(ReliableSender, HandsOutSequentialSegments) {
  ReliableSender s(3000, {.mtu_payload = 1000, .rto = 100});
  const auto a = s.next_segment(0);
  const auto b = s.next_segment(0);
  const auto c = s.next_segment(0);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(a->offset, 0u);
  EXPECT_EQ(b->offset, 1000u);
  EXPECT_EQ(c->offset, 2000u);
  EXPECT_TRUE(s.all_sent());
  EXPECT_FALSE(s.next_segment(0).has_value());  // nothing expired yet
  EXPECT_FALSE(s.fully_acked());
}

TEST(ReliableSender, AckRetiresSegments) {
  ReliableSender s(3000, {.mtu_payload = 1000, .rto = 100});
  while (s.next_segment(0)) {
  }
  s.on_ack(2000, {});
  EXPECT_FALSE(s.fully_acked());
  s.on_ack(3000, {});
  EXPECT_TRUE(s.fully_acked());
}

TEST(ReliableSender, SackRetiresMidStream) {
  ReliableSender s(3000, {.mtu_payload = 1000, .rto = 100});
  while (s.next_segment(0)) {
  }
  const ByteRange sack{2000, 3000};
  s.on_ack(0, std::span<const ByteRange>(&sack, 1));
  // Only [0,1000) and [1000,2000) remain in flight; at t=100 both expire.
  const auto r1 = s.next_segment(100);
  const auto r2 = s.next_segment(100);
  ASSERT_TRUE(r1 && r2);
  EXPECT_TRUE(r1->retransmit);
  EXPECT_EQ(r1->offset + r2->offset, 1000u);  // 0 and 1000 in some order
  EXPECT_FALSE(s.next_segment(100).has_value());
}

TEST(ReliableSender, RetransmitOnlyAfterRto) {
  ReliableSender s(1000, {.mtu_payload = 1000, .rto = 500});
  ASSERT_TRUE(s.next_segment(0).has_value());
  EXPECT_FALSE(s.next_segment(499).has_value());
  const auto r = s.next_segment(500);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->retransmit);
  EXPECT_EQ(s.retransmissions(), 1u);
}

TEST(ReliableSender, NextDeadlineTracksEarliest) {
  ReliableSender s(2000, {.mtu_payload = 1000, .rto = 100});
  EXPECT_EQ(s.next_deadline(), std::nullopt);
  s.next_segment(0);
  s.next_segment(50);
  EXPECT_EQ(s.next_deadline(), std::optional<TimeNs>(100));
  s.on_ack(1000, {});
  EXPECT_EQ(s.next_deadline(), std::optional<TimeNs>(150));
}

TEST(ReliableSender, NextDeadlineEmptyAgainWhenFullyAcked) {
  // The old interface returned -1 here; a caller that compared it against
  // an unsigned clock would schedule a wakeup at t = 2^64 - 1. With
  // optional the "no deadline" state is unmistakable.
  ReliableSender s(1000, {.mtu_payload = 1000, .rto = 100});
  s.next_segment(0);
  EXPECT_TRUE(s.next_deadline().has_value());
  s.on_ack(1000, {});
  EXPECT_EQ(s.next_deadline(), std::nullopt);
  EXPECT_TRUE(s.fully_acked());
}

TEST(ReliableSender, GivesUpAfterBudget) {
  ReliableSender s(1000, {.mtu_payload = 1000, .rto = 1, .max_retransmits = 3});
  TimeNs t = 0;
  s.next_segment(t);
  for (int i = 0; i < 3; ++i) {
    const auto d = s.next_deadline();
    ASSERT_TRUE(d.has_value());
    t = *d;
    ASSERT_TRUE(s.next_segment(t).has_value());
  }
  const auto d = s.next_deadline();
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(s.gave_up());
  // Budget exhausted: the verdict is surfaced, not thrown, and it sticks.
  EXPECT_EQ(s.next_segment(*d), std::nullopt);
  EXPECT_TRUE(s.gave_up());
  EXPECT_EQ(s.gave_up_at(), *d);
  EXPECT_EQ(s.next_segment(*d + 1000), std::nullopt);  // frozen for good
  EXPECT_FALSE(s.fully_acked());
}

TEST(ReliableSender, GiveUpFiresOnExactBudgetBoundary) {
  // max_retransmits bounds the number of *re*transmissions: the original
  // send plus max_retransmits expiries succeed, the next expiry flips the
  // give-up verdict. The deadline stays visible right up to that point, so
  // a driver sleeping on next_deadline() is guaranteed to wake up and
  // surface the failure instead of spinning silently.
  ReliableSender s(1000, {.mtu_payload = 1000, .rto = 10, .max_retransmits = 1});
  ASSERT_TRUE(s.next_segment(0).has_value());
  const auto d = s.next_deadline();
  ASSERT_TRUE(d.has_value());
  ASSERT_TRUE(s.next_segment(*d).has_value());  // the single allowed retransmit
  EXPECT_EQ(s.retransmissions(), 1u);
  const auto d2 = s.next_deadline();
  ASSERT_TRUE(d2.has_value());  // still armed: exhaustion must surface
  EXPECT_EQ(s.next_segment(*d2), std::nullopt);
  EXPECT_TRUE(s.gave_up());
}

TEST(ReliableSender, RetransmitBackoffDoublesAndCaps) {
  // Each retransmission of one segment doubles its timer (capped at
  // max_rto): the fix for full-rate retransmission into a dead path.
  ReliableSender s(1000, {.mtu_payload = 1000,
                          .rto = 100,
                          .max_retransmits = 64,
                          .max_rto = 1000});
  ASSERT_TRUE(s.next_segment(0).has_value());
  EXPECT_EQ(*s.next_deadline(), 100);  // initial arm: base RTO
  TimeNs t = *s.next_deadline();
  ASSERT_TRUE(s.next_segment(t).has_value());
  EXPECT_EQ(*s.next_deadline() - t, 200);  // 1st retransmit: 2x
  t = *s.next_deadline();
  ASSERT_TRUE(s.next_segment(t).has_value());
  EXPECT_EQ(*s.next_deadline() - t, 400);  // 2nd: 4x
  t = *s.next_deadline();
  ASSERT_TRUE(s.next_segment(t).has_value());
  EXPECT_EQ(*s.next_deadline() - t, 800);  // 3rd: 8x
  t = *s.next_deadline();
  ASSERT_TRUE(s.next_segment(t).has_value());
  EXPECT_EQ(*s.next_deadline() - t, 1000);  // capped at max_rto
}

TEST(ReliableSender, AdaptiveRtoTracksSampledRtt) {
  ReliableSender s(30000, {.mtu_payload = 1000,
                           .rto = 500,
                           .max_retransmits = 64,
                           .adaptive_rto = true,
                           .min_rto = 10,
                           .max_rto = 100000});
  EXPECT_EQ(s.current_rto(), 500);  // no samples yet: the configured base
  ASSERT_TRUE(s.next_segment(0).has_value());
  s.on_ack(1000, {}, 40);  // RTT sample = 40
  EXPECT_EQ(s.rtt_samples(), 1u);
  // First sample: srtt = 40, rttvar = 20, rto = srtt + 4*rttvar = 120.
  EXPECT_EQ(s.srtt(), 40);
  EXPECT_EQ(s.current_rto(), 120);
  // Steady samples at the same RTT shrink rttvar toward 0.
  TimeNs t = 100;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(s.next_segment(t).has_value());
    const ByteRange sack{1000 * static_cast<std::uint64_t>(i + 1),
                         1000 * static_cast<std::uint64_t>(i + 2)};
    s.on_ack(0, std::span<const ByteRange>(&sack, 1), t + 40);
    t += 1000;
  }
  EXPECT_EQ(s.srtt(), 40);
  EXPECT_LT(s.current_rto(), 120);
  EXPECT_GE(s.current_rto(), 10);
}

TEST(ReliableSender, KarnRuleSkipsRetransmittedSegments) {
  ReliableSender s(1000, {.mtu_payload = 1000,
                          .rto = 100,
                          .max_retransmits = 64,
                          .adaptive_rto = true});
  ASSERT_TRUE(s.next_segment(0).has_value());
  ASSERT_TRUE(s.next_segment(100).has_value());  // retransmitted once
  s.on_ack(1000, {}, 150);
  EXPECT_EQ(s.rtt_samples(), 0u);  // ambiguous ACK: no sample taken
  EXPECT_EQ(s.current_rto(), 100);
}

// --- End-to-end: R2C2 with corruption + reliability ---

TEST(Reliability, FlowsCompleteDespiteCorruption) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2SimConfig cfg;
  cfg.reliable = true;
  cfg.rto = 200 * kNsPerUs;
  cfg.net.corruption_rate = 0.02;  // 2% of transmissions corrupted
  sim::R2c2Sim sim(topo, router, cfg);
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 60;
  wl.mean_interarrival = 5 * kNsPerUs;
  wl.max_bytes = 128 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const sim::RunMetrics m = sim.run();
  for (const auto& f : m.flows) EXPECT_TRUE(f.finished()) << "flow " << f.id;
  EXPECT_GT(sim.retransmissions(), 0u);
}

TEST(Reliability, NoCorruptionMeansNoRetransmissions) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2SimConfig cfg;
  cfg.reliable = true;
  sim::R2c2Sim sim(topo, router, cfg);
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 40;
  wl.mean_interarrival = 5 * kNsPerUs;
  wl.max_bytes = 64 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const sim::RunMetrics m = sim.run();
  for (const auto& f : m.flows) EXPECT_TRUE(f.finished());
  EXPECT_EQ(sim.retransmissions(), 0u);
}

TEST(Reliability, ReliableModeMatchesUnreliableWhenClean) {
  // Decoupling check: on a loss-free network, adding the reliability layer
  // barely changes FCTs (ACKs are tiny and carry no rate semantics).
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 60;
  wl.mean_interarrival = 5 * kNsPerUs;
  wl.max_bytes = 128 * 1024;
  const auto flows = generate_poisson_uniform(wl);
  const auto run = [&](bool reliable) {
    sim::R2c2SimConfig cfg;
    cfg.reliable = reliable;
    sim::R2c2Sim s(topo, router, cfg);
    s.add_flows(flows);
    const auto m = s.run();
    double total = 0;
    for (const auto& f : m.flows) total += static_cast<double>(f.fct());
    return total / static_cast<double>(m.flows.size());
  };
  const double plain = run(false);
  const double reliable = run(true);
  EXPECT_LT(reliable, plain * 1.25);
}

TEST(Reliability, CorruptedBroadcastsAreRecovered) {
  // Even flow-event broadcasts ride over lossy links; the Section 3.2
  // drop-notice recovery keeps the control plane consistent (no leaked
  // view entries would mean rates never converge and flows starve).
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  sim::R2c2SimConfig cfg;
  cfg.reliable = true;
  cfg.net.corruption_rate = 0.05;
  sim::R2c2Sim sim(topo, router, cfg);
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 50;
  wl.mean_interarrival = 10 * kNsPerUs;
  wl.max_bytes = 32 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const sim::RunMetrics m = sim.run();
  for (const auto& f : m.flows) EXPECT_TRUE(f.finished()) << "flow " << f.id;
}

}  // namespace
}  // namespace r2c2
