// Observability primitives (src/obs/): flight-recorder ring semantics,
// metric math, registry snapshots, the scoped-timer spans, and the Chrome
// trace exporter's balance guarantees — plus the allocation-free claim,
// checked with the same counting-allocator technique as
// waterfill_diff_test.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "obs/trace_export.h"

// --- Counting allocator ---------------------------------------------------
// Global operator new/delete overrides local to this test binary: the
// flight recorder and the metric update paths claim to be allocation-free
// after construction, and the test below holds them to it.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// The pairing below is exact (new = malloc, delete = free), but once a
// caller's new/delete both inline into one frame GCC can no longer tell
// and reports a mismatch; silence that false positive for this binary.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  ++g_allocations;
  const std::size_t a = static_cast<std::size_t>(align);
  return std::aligned_alloc(a, (size + a - 1) / a * a);
}
void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t& t) noexcept {
  return ::operator new(size, align, t);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace r2c2::obs {
namespace {

// --- FlightRecorder -------------------------------------------------------

TEST(FlightRecorder, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(FlightRecorder(1).capacity(), 1u);
  EXPECT_EQ(FlightRecorder(2).capacity(), 2u);
  EXPECT_EQ(FlightRecorder(3).capacity(), 4u);
  EXPECT_EQ(FlightRecorder(5).capacity(), 8u);
  EXPECT_EQ(FlightRecorder(1000).capacity(), 1024u);
  EXPECT_EQ(FlightRecorder().capacity(), FlightRecorder::kDefaultCapacity);
}

TEST(FlightRecorder, RecordsInOrderBelowCapacity) {
  FlightRecorder rec(8);
  EXPECT_TRUE(rec.empty());
  for (int i = 0; i < 5; ++i) {
    rec.record(100 * i, static_cast<NodeId>(i), EventType::kFlowStart, EventPhase::kInstant,
               static_cast<std::uint64_t>(i), 7);
  }
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.overwritten(), 0u);
  EXPECT_EQ(rec.total_recorded(), 5u);
  const std::vector<TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].ts, 100 * i);
    EXPECT_EQ(events[static_cast<std::size_t>(i)].node, static_cast<NodeId>(i));
    EXPECT_EQ(events[static_cast<std::size_t>(i)].arg0, static_cast<std::uint64_t>(i));
    EXPECT_EQ(events[static_cast<std::size_t>(i)].arg1, 7u);
  }
}

TEST(FlightRecorder, WraparoundKeepsNewestAndCountsOverwritten) {
  FlightRecorder rec(4);
  ASSERT_EQ(rec.capacity(), 4u);
  for (int i = 0; i < 10; ++i) {
    rec.record(i, 0, EventType::kFlowStart, EventPhase::kInstant, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.overwritten(), 6u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  // for_each visits oldest-first: the retained window is [6, 9].
  std::vector<std::uint64_t> seen;
  rec.for_each([&seen](const TraceEvent& e) { seen.push_back(e.arg0); });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{6, 7, 8, 9}));
}

TEST(FlightRecorder, ClearResetsEverything) {
  FlightRecorder rec(4);
  for (int i = 0; i < 9; ++i) rec.record(i, 0, EventType::kPacketDrop);
  rec.clear();
  EXPECT_TRUE(rec.empty());
  EXPECT_EQ(rec.overwritten(), 0u);
  rec.record(42, 3, EventType::kFlowFinish);
  const std::vector<TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts, 42);
  EXPECT_EQ(events[0].node, 3u);
}

TEST(FlightRecorder, RecordIsAllocationFreeAfterConstruction) {
  FlightRecorder rec(1 << 10);
  // Warm-up (construction already sized the buffer; nothing else to warm).
  rec.record(0, 0, EventType::kStackTick, EventPhase::kBegin);
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100000; ++i) {
    rec.record(i, static_cast<NodeId>(i & 15), EventType::kRateRecompute,
               (i & 1) != 0 ? EventPhase::kEnd : EventPhase::kBegin,
               static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i) * 2);
  }
  EXPECT_EQ(g_allocations.load(), before) << "FlightRecorder::record allocated";
}

TEST(FlightRecorder, EventNamesAndCategoriesAreStable) {
  for (int t = 0; t < static_cast<int>(EventType::kCount); ++t) {
    const EventType type = static_cast<EventType>(t);
    EXPECT_STRNE(event_name(type), "") << t;
    EXPECT_STRNE(event_category(type), "") << t;
  }
}

// --- Metrics --------------------------------------------------------------

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
}

TEST(Metrics, HistogramTracksExactStatsAndApproxQuantiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Quantile endpoints are exact; interior quantiles are bucket-approximate
  // (log2 buckets -> within a factor of 2 of the true value).
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
  const double p50 = h.percentile(50);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 1000.0);
  const double p99 = h.percentile(99);
  EXPECT_GE(p99, p50);
  EXPECT_LE(p99, 1000.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Metrics, HistogramObserveIsAllocationFree) {
  Histogram h;
  h.observe(1.0);
  Counter c;
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 100000; ++i) {
    h.observe(static_cast<double>(i));
    c.add(1);
  }
  EXPECT_EQ(g_allocations.load(), before) << "metric update allocated";
}

TEST(Metrics, RegistryGetOrCreateReturnsStableRefs) {
  MetricsRegistry reg;
  Counter& a = reg.counter("r2c2.test.counter");
  a.add(5);
  Counter& b = reg.counter("r2c2.test.counter");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 5u);
  // Creating more metrics must not invalidate earlier references.
  for (int i = 0; i < 100; ++i) {
    reg.counter("c" + std::to_string(i));
    reg.histogram("h" + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("r2c2.test.counter"), &a);
  EXPECT_EQ(reg.size(), 201u);
}

TEST(Metrics, RegistryRejectsCrossKindNameCollisions) {
  MetricsRegistry reg;
  reg.counter("dual.use");
  EXPECT_THROW(reg.gauge("dual.use"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("dual.use"), std::invalid_argument);
  EXPECT_EQ(reg.find_counter("dual.use")->value(), 0u);
  EXPECT_EQ(reg.find_gauge("dual.use"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
}

TEST(Metrics, RegistryJsonAndTableSnapshots) {
  MetricsRegistry reg;
  reg.counter("net.drops").add(3);
  reg.gauge("sim.end_ns").set(12345.0);
  Histogram& h = reg.histogram("stack.tick_wall_ns");
  h.observe(10.0);
  h.observe(20.0);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"net.drops\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"sim.end_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"stack.tick_wall_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);

  std::ostringstream os;
  reg.print(os);
  const std::string table = os.str();
  EXPECT_NE(table.find("net.drops"), std::string::npos);
  EXPECT_NE(table.find("stack.tick_wall_ns"), std::string::npos);

  reg.reset();
  EXPECT_EQ(reg.find_counter("net.drops")->value(), 0u);
  EXPECT_EQ(reg.find_histogram("stack.tick_wall_ns")->count(), 0u);
  EXPECT_EQ(reg.size(), 3u);  // reset clears values, not registrations
}

// --- ScopedTimer ----------------------------------------------------------

TEST(ScopedTimer, FeedsHistogramAndEmitsBalancedSpan) {
  Histogram h;
  FlightRecorder rec(16);
  {
    ScopedTimer t(&h, &rec, /*sim_ts=*/500, /*node=*/2, EventType::kRateRecompute, 9);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.max(), 0.0);
  const std::vector<TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, EventPhase::kBegin);
  EXPECT_EQ(events[0].ts, 500);
  EXPECT_EQ(events[0].node, 2u);
  EXPECT_EQ(events[0].arg0, 9u);
  EXPECT_EQ(events[1].phase, EventPhase::kEnd);
  EXPECT_EQ(events[1].type, EventType::kRateRecompute);
}

TEST(ScopedTimer, NullTargetsAreSafe) {
  { ScopedTimer t(nullptr); }
  { ScopedTimer t(nullptr, nullptr, 0, 0, EventType::kStackTick); }
  Histogram h;
  { ScopedTimer t(&h, nullptr, 0, 0, EventType::kStackTick); }
  EXPECT_EQ(h.count(), 1u);
}

// --- Chrome trace exporter ------------------------------------------------

// Minimal count of occurrences of `needle` in `hay`.
std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TraceExport, EmptyRecorderYieldsValidEnvelope) {
  FlightRecorder rec(8);
  const std::string json = to_chrome_trace_json(rec);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_EQ(count_of(json, "\"ph\""), 0u);
}

TEST(TraceExport, BalancesOrphanedEndAndDanglingBegin) {
  FlightRecorder rec(16);
  // An End whose Begin was (conceptually) overwritten: must be dropped.
  rec.record(100, 1, EventType::kRateRecompute, EventPhase::kEnd);
  // A well-formed pair.
  rec.record(200, 1, EventType::kRateRecompute, EventPhase::kBegin);
  rec.record(300, 1, EventType::kRateRecompute, EventPhase::kEnd);
  // A dangling Begin (run stopped inside the span): must be closed.
  rec.record(400, 2, EventType::kFaultRebuild, EventPhase::kBegin);
  rec.record(500, 3, EventType::kFlowStart, EventPhase::kInstant);
  const std::string json = to_chrome_trace_json(rec);
  EXPECT_EQ(count_of(json, "\"ph\": \"B\""), count_of(json, "\"ph\": \"E\""));
  EXPECT_EQ(count_of(json, "\"ph\": \"B\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\": \"i\""), 1u);
  // Overwrite metadata present even when nothing was overwritten.
  EXPECT_NE(json.find("\"events_overwritten\""), std::string::npos);
}

TEST(TraceExport, SpansNestPerNode) {
  FlightRecorder rec(16);
  rec.record(100, 1, EventType::kStackTick, EventPhase::kBegin);
  rec.record(110, 1, EventType::kRateRecompute, EventPhase::kBegin);
  rec.record(120, 1, EventType::kRateRecompute, EventPhase::kEnd);
  rec.record(130, 1, EventType::kStackTick, EventPhase::kEnd);
  const std::string json = to_chrome_trace_json(rec);
  EXPECT_EQ(count_of(json, "\"ph\": \"B\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\": \"E\""), 2u);
  // Both events attributed to tid 1.
  EXPECT_GE(count_of(json, "\"tid\": 1"), 4u);
}

}  // namespace
}  // namespace r2c2::obs
