// Gray failures: per-direction link degradation (loss, corruption, added
// latency/jitter, flap oscillators), phi-accrual-style adaptive detection
// that demotes lossy-but-alive links in routing without declaring them
// dead, adaptive-RTO give-up surfaced as explicit flow aborts, and the
// snapshot discipline over all of the new state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "routing/routing.h"
#include "sim/fault.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/r2c2_sim.h"
#include "snapshot/archive.h"
#include "topology/topology.h"
#include "workload/generator.h"

namespace r2c2 {
namespace {

using sim::ChaosConfig;
using sim::Engine;
using sim::FaultEvent;
using sim::FaultInjector;
using sim::FaultScript;
using sim::LinkDegrade;
using sim::LinkDir;
using sim::Network;
using sim::NetworkConfig;
using sim::R2c2Sim;
using sim::R2c2SimConfig;
using sim::RunMetrics;
using sim::SimPacket;

std::vector<FlowArrival> mesh_workload(const Topology& topo, int flows, std::uint64_t seed) {
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = flows;
  wl.mean_interarrival = 5 * kNsPerUs;
  wl.max_bytes = 96 * 1024;
  wl.seed = seed;
  return generate_poisson_uniform(wl);
}

// --- Network-level degradation ---------------------------------------------

class GrayNetworkTest : public ::testing::Test {
 protected:
  GrayNetworkTest() : topo_(make_torus({4}, 10 * kGbps, 100)) {}

  SimPacket data_packet(const Path& path, std::uint32_t bytes) {
    SimPacket p;
    p.type = PacketType::kData;
    p.flow = 1;
    p.src = path.front();
    p.dst = path.back();
    p.payload = bytes - static_cast<std::uint32_t>(DataHeader::kWireSize);
    p.wire_bytes = bytes;
    p.route = encode_path(topo_, path);
    return p;
  }

  Topology topo_;
};

TEST_F(GrayNetworkTest, LossIsPerDirection) {
  Engine e;
  Network net(e, topo_, {});
  int delivered = 0;
  net.set_deliver([&](NodeId, SimPacket&&) { ++delivered; });
  LinkDegrade gray;
  gray.loss_prob = 1.0;  // certain loss, so no RNG luck in the assertion
  net.set_link_degrade(topo_.find_link(0, 1), gray);
  net.forward(0, data_packet({0, 1}, 1500));  // degraded direction: lost
  net.forward(1, data_packet({1, 0}, 1500));  // reverse direction: clean
  e.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.gray_drops(), 1u);
  EXPECT_EQ(net.degraded_links(), 1);
}

TEST_F(GrayNetworkTest, AddedLatencyShiftsArrivalExactly) {
  Engine e;
  Network net(e, topo_, {});
  TimeNs arrival = -1;
  net.set_deliver([&](NodeId, SimPacket&&) { arrival = e.now(); });
  LinkDegrade gray;
  gray.added_latency = 777;
  net.set_link_degrade(topo_.find_link(0, 1), gray);
  net.forward(0, data_packet({0, 1}, 1500));
  e.run();
  // 1500 B at 10 Gbps = 1200 ns + 100 ns propagation + 777 ns degradation.
  EXPECT_EQ(arrival, 1300 + 777);
}

TEST_F(GrayNetworkTest, JitterIsBoundedAndDeterministic) {
  auto run_once = [&] {
    Engine e;
    Network net(e, topo_, {});
    std::vector<TimeNs> arrivals;
    net.set_deliver([&](NodeId, SimPacket&&) { arrivals.push_back(e.now()); });
    LinkDegrade gray;
    gray.jitter = 400;
    net.set_link_degrade(topo_.find_link(0, 1), gray);
    for (int i = 0; i < 8; ++i) net.forward(0, data_packet({0, 1}, 1500));
    e.run();
    return arrivals;
  };
  const std::vector<TimeNs> a = run_once();
  const std::vector<TimeNs> b = run_once();
  ASSERT_EQ(a.size(), 8u);
  EXPECT_EQ(a, b);  // jitter draws come from the seeded per-lane RNG
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Each arrival is its queue-position baseline plus jitter in [0, 400).
    const TimeNs base = 1300 + static_cast<TimeNs>(i) * 1200;
    EXPECT_GE(a[i], base);
    EXPECT_LT(a[i], base + 400);
  }
}

TEST_F(GrayNetworkTest, FlapOscillatorGoesDarkPeriodically) {
  Engine e;
  Network net(e, topo_, {});
  int delivered = 0;
  net.set_deliver([&](NodeId, SimPacket&&) { ++delivered; });
  LinkDegrade gray;
  gray.flap_period = 1000;
  gray.flap_down = 500;  // dark during [0, 500) of each period (anchor = now)
  const LinkId link = topo_.find_link(0, 1);
  net.set_link_degrade(link, gray);
  // The flap gate is sampled when serialization *starts* (try_transmit),
  // so keep the port idle between sends: packet one transmits at t=100
  // (dark: 100 % 1000 < 500), packet two at t=1600 (up: 600 >= 500).
  e.schedule_at(100, sim::EventDesc{0, 0, 0},
                [&] { net.forward(0, data_packet({0, 1}, 1500)); });
  e.schedule_at(1600, sim::EventDesc{0, 0, 0},
                [&] { net.forward(0, data_packet({0, 1}, 1500)); });
  e.run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.gray_drops(), 1u);
}

// --- Injector direction split ----------------------------------------------

TEST(GrayInjector, OneWayFailTakesOnlyOneDirectionDark) {
  const Topology topo = make_torus({4}, 10 * kGbps, 100);
  Engine e;
  Network net(e, topo, NetworkConfig{});
  const LinkId fwd = topo.find_link(0, 1);
  FaultScript script;
  script.events.push_back(FaultScript::fail_one_way(100, fwd));
  script.events.push_back(FaultScript::restore_one_way(300, fwd));
  FaultInjector injector(e, net, topo, script);
  injector.arm();
  e.run(200);
  EXPECT_FALSE(injector.link_up(fwd));
  EXPECT_TRUE(injector.link_up(fwd, LinkDir::kReverse));
  EXPECT_FALSE(injector.cable_up(fwd));
  e.run();
  EXPECT_TRUE(injector.cable_up(fwd));
  EXPECT_EQ(injector.failures_injected(), 1u);
  EXPECT_EQ(injector.restores_injected(), 1u);
}

TEST(GrayInjector, OneWayDegradeLeavesReverseClean) {
  const Topology topo = make_torus({4}, 10 * kGbps, 100);
  Engine e;
  Network net(e, topo, NetworkConfig{});
  const LinkId fwd = topo.find_link(2, 3);
  LinkDegrade gray;
  gray.loss_prob = 0.25;
  FaultScript script;
  script.events.push_back(FaultScript::degrade_one_way(100, fwd, gray));
  script.events.push_back(FaultScript::clear_degrade_one_way(300, fwd));
  FaultInjector injector(e, net, topo, script);
  injector.arm();
  e.run(200);
  EXPECT_TRUE(injector.link_degrade(fwd).active());
  EXPECT_FALSE(injector.link_degrade(fwd, LinkDir::kReverse).active());
  EXPECT_TRUE(injector.link_up(fwd));  // degraded, not down
  e.run();
  EXPECT_FALSE(injector.link_degrade(fwd).active());
  EXPECT_EQ(injector.degrades_injected(), 1u);
  EXPECT_EQ(injector.degrades_cleared(), 1u);
}

// --- Chaos script: multi-fail + node waves (cumulative connectivity) -------

TEST(ChaosScriptGray, MultiFailAndNodeWavesKeepSurvivorsConnected) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  Rng rng(99);
  ChaosConfig cc;
  cc.waves = 6;
  cc.fails_per_wave = 3;
  cc.node_waves = 3;
  cc.nodes_per_wave = 1;
  const FaultScript script = sim::make_chaos_script(topo, rng, cc);

  std::vector<char> down(topo.num_links(), 0);
  std::vector<char> node_down(topo.num_nodes(), 0);
  auto set_cable = [&](LinkId link, char v) {
    const Link& l = topo.link(link);
    down[link] = v;
    const LinkId rev = topo.find_link(l.to, l.from);
    if (rev != kInvalidLink) down[rev] = v;
  };
  // Connectivity over surviving nodes only: a failed node is expected to be
  // unreachable, everyone else must still reach everyone else.
  auto survivors_connected = [&] {
    NodeId start = kInvalidNode;
    std::size_t alive = 0;
    for (NodeId n = 0; n < topo.num_nodes(); ++n) {
      if (!node_down[n]) {
        ++alive;
        if (start == kInvalidNode) start = n;
      }
    }
    if (alive == 0) return true;
    std::vector<char> seen(topo.num_nodes(), 0);
    std::vector<NodeId> stack{start};
    seen[start] = 1;
    std::size_t reached = 1;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const LinkId id : topo.out_links(u)) {
        if (down[id]) continue;
        const NodeId v = topo.link(id).to;
        if (!seen[v] && !node_down[v]) {
          seen[v] = 1;
          ++reached;
          stack.push_back(v);
        }
      }
    }
    return reached == alive;
  };

  int node_fails = 0;
  for (const FaultEvent& ev : script.events) {
    switch (ev.kind) {
      case FaultEvent::Kind::kFailLink:
        set_cable(ev.link, 1);
        break;
      case FaultEvent::Kind::kRestoreLink:
        set_cable(ev.link, 0);
        break;
      case FaultEvent::Kind::kFailNode:
        ++node_fails;
        node_down[ev.node] = 1;
        for (const LinkId id : topo.out_links(ev.node)) set_cable(id, 1);
        break;
      case FaultEvent::Kind::kRestoreNode:
        node_down[ev.node] = 0;
        for (const LinkId id : topo.out_links(ev.node)) set_cable(id, 0);
        break;
      default:
        break;
    }
    EXPECT_TRUE(survivors_connected()) << "at t=" << ev.at;
  }
  EXPECT_EQ(node_fails, cc.node_waves * cc.nodes_per_wave);
}

TEST(ChaosScriptGray, GrayPhaseNeverPerturbsHardPhases) {
  // Phased generation: enabling gray waves must not change a single draw of
  // the link/node phases — the hard prefix of the script is bit-identical.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  ChaosConfig hard_only;
  hard_only.waves = 4;
  hard_only.fails_per_wave = 2;
  hard_only.node_waves = 2;
  ChaosConfig with_gray = hard_only;
  with_gray.gray_waves = 3;
  with_gray.grays_per_wave = 2;
  Rng a(1234), b(1234);
  const FaultScript hard = sim::make_chaos_script(topo, a, hard_only);
  const FaultScript full = sim::make_chaos_script(topo, b, with_gray);

  std::vector<FaultEvent> full_hard;
  int grays = 0;
  for (const FaultEvent& ev : full.events) {
    if (ev.is_gray()) {
      ++grays;
    } else {
      full_hard.push_back(ev);
    }
  }
  EXPECT_GT(grays, 0);
  ASSERT_EQ(full_hard.size(), hard.events.size());
  for (std::size_t i = 0; i < full_hard.size(); ++i) {
    EXPECT_EQ(full_hard[i].at, hard.events[i].at);
    EXPECT_EQ(full_hard[i].kind, hard.events[i].kind);
    EXPECT_EQ(full_hard[i].link, hard.events[i].link);
    EXPECT_EQ(full_hard[i].node, hard.events[i].node);
  }
}

// --- Router penalty hook ----------------------------------------------------

TEST(RouterPenalty, EmptyAndZeroPenaltyMatchBaseDrawForDraw) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  const std::vector<double> zeros(topo.num_links(), 0.0);
  Rng base_rng(5), empty_rng(5), zero_rng(5);
  Path base, via_empty, via_zero;
  for (int i = 0; i < 200; ++i) {
    const NodeId src = static_cast<NodeId>(i % 16);
    const NodeId dst = static_cast<NodeId>((i * 7 + 3) % 16);
    if (src == dst) continue;
    router.pick_path_into(RouteAlg::kRps, src, dst, base_rng, base);
    router.pick_path_into(RouteAlg::kRps, src, dst, empty_rng, via_empty,
                          std::span<const double>{});
    router.pick_path_into(RouteAlg::kRps, src, dst, zero_rng, via_zero,
                          std::span<const double>(zeros));
    // Same RNG draw sequence in all three: bit-identical paths, so turning
    // the penalty plumbing on with no suspects never changes a trajectory.
    EXPECT_EQ(base, via_empty);
    EXPECT_EQ(base, via_zero);
  }
}

TEST(RouterPenalty, PenalizedLinkIsAvoidedProportionally) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  // Penalize 0->1 heavily; 0 and 5 are torus neighbors of the 0->1->5 and
  // 0->4->5 two-hop square, so RPS picks between two first hops.
  std::vector<double> penalty(topo.num_links(), 0.0);
  const LinkId bad = topo.find_link(0, 1);
  penalty[bad] = 8.0;  // weight 1/9 vs 1: ~10% of the former traffic
  Rng rng(11);
  Path path;
  int through_bad = 0;
  const int kTrials = 2000;
  for (int i = 0; i < kTrials; ++i) {
    router.pick_path_into(RouteAlg::kRps, 0, 5, rng, path,
                          std::span<const double>(penalty));
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      if (path[h] == 0 && path[h + 1] == 1) ++through_bad;
    }
  }
  // Unpenalized both next hops are equally likely (~50%). With weight
  // 1/(1+8) vs 1 the bad first hop should drop to ~1/10.
  EXPECT_LT(through_bad, kTrials / 5);
  EXPECT_GT(through_bad, 0);  // demoted, not removed
}

// --- Adaptive detection in the simulator ------------------------------------

R2c2SimConfig adaptive_config() {
  R2c2SimConfig cfg;
  cfg.reliable = true;
  cfg.keepalive_interval = 10 * kNsPerUs;
  cfg.rebuild_delay = 20 * kNsPerUs;
  cfg.lease_interval = 100 * kNsPerUs;
  cfg.rto = 150 * kNsPerUs;
  cfg.adaptive_rto = true;
  cfg.retransmit_jitter = true;
  cfg.adaptive_detection = true;
  return cfg;
}

TEST(AdaptiveDetection, LossyLinkDemotedNeverDeclaredDead) {
  // The acceptance scenario: a 5%-loss link must be demoted in routing but
  // never declared dead — no failure detection, no context rebuild, and
  // every flow still completes through retransmission.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg = adaptive_config();
  LinkDegrade gray;
  gray.loss_prob = 0.05;
  const LinkId lossy = topo.find_link(0, 1);
  cfg.faults.events.push_back(FaultScript::degrade_link(40 * kNsPerUs, lossy, gray));
  R2c2Sim simulator(topo, router, cfg);
  simulator.add_flows(mesh_workload(topo, 40, 23));
  const RunMetrics m = simulator.run();

  EXPECT_GE(m.links_demoted, 1u);
  EXPECT_EQ(m.failures_detected, 0u);  // lossy != dead
  EXPECT_EQ(m.context_rebuilds, 0u);   // no spurious topology rebuild
  EXPECT_GT(m.gray_drops, 0u);
  EXPECT_EQ(m.flow_aborts, 0u);
  for (const sim::FlowRecord& f : m.flows) {
    EXPECT_TRUE(f.finished()) << "flow " << f.id;
  }
}

TEST(AdaptiveDetection, HysteresisClearsDemotionAfterLinkHeals) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg = adaptive_config();
  cfg.suspect_ewma_alpha = 0.3;  // faster decay so clearing lands in-run
  // At 50% keepalive loss a 4-interval binary deadline trips with p=1/16 per
  // window; this test is about suspicion hysteresis, so push the binary
  // verdict far enough out that it cannot fire during the lossy window.
  cfg.failure_timeout = 120 * kNsPerUs;
  LinkDegrade gray;
  gray.loss_prob = 0.5;
  const LinkId lossy = topo.find_link(0, 1);
  cfg.faults.events.push_back(FaultScript::degrade_link(40 * kNsPerUs, lossy, gray));
  cfg.faults.events.push_back(FaultScript::clear_degrade(150 * kNsPerUs, lossy));
  R2c2Sim simulator(topo, router, cfg);
  simulator.add_flows(mesh_workload(topo, 60, 31));
  const RunMetrics m = simulator.run();

  EXPECT_GE(m.links_demoted, 1u);
  EXPECT_GE(m.links_cleared, 1u);
  EXPECT_EQ(m.context_rebuilds, 0u);
  EXPECT_EQ(simulator.suspects(), 0u);  // nothing left demoted at the end
}

TEST(AdaptiveDetection, ZeroSuspectsKeepTrajectoryBitIdentical) {
  // adaptive_detection=on with zero suspects must be bit-identical to
  // adaptive_detection=off: the penalized walk consumes the exact same RNG
  // draws when every penalty is zero. Thresholds are parked out of reach —
  // with them live, congestion-delayed keepalives can legitimately demote
  // (the detector reads queueing as loss), which *should* change routing.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig off = adaptive_config();
  off.adaptive_detection = false;
  R2c2SimConfig on = adaptive_config();
  on.suspect_loss_threshold = 2.0;  // loss = 1 - deliv can never exceed 1
  on.suspect_phi = 1e18;
  R2c2Sim a(topo, router, off);
  R2c2Sim b(topo, router, on);
  a.add_flows(mesh_workload(topo, 40, 37));
  b.add_flows(mesh_workload(topo, 40, 37));
  const RunMetrics ma = a.run();
  const RunMetrics mb = b.run();
  ASSERT_EQ(ma.flows.size(), mb.flows.size());
  for (std::size_t i = 0; i < ma.flows.size(); ++i) {
    EXPECT_EQ(ma.flows[i].completed, mb.flows[i].completed);
  }
  EXPECT_EQ(ma.data_bytes_on_wire, mb.data_bytes_on_wire);
  EXPECT_EQ(mb.links_demoted, 0u);
}

// --- Transport give-up surfaced as an explicit abort ------------------------

TEST(FlowAbort, UnreachableDestinationAbortsInsteadOfHanging) {
  // Kill every cable of one node and never restore it, with detection off:
  // packets to it blackhole silently, the sender's retransmission budget
  // runs out, and the flow must surface as an explicit abort — counted in
  // metrics, stamped on the record, and the run still terminates.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg;
  cfg.reliable = true;
  cfg.rto = 50 * kNsPerUs;
  cfg.max_retransmits = 4;
  cfg.adaptive_rto = true;
  cfg.min_rto = 20 * kNsPerUs;
  cfg.max_rto = 200 * kNsPerUs;
  cfg.retransmit_jitter = true;
  // The abort's FlowFinish broadcast can never complete (the dead node
  // never gets its tree copy), so the global view keeps the ghost entry
  // until the lease GC expires it; without leases the control plane would
  // keep recomputing rates for a flow it still believes exists and the
  // run would never go idle.
  cfg.lease_interval = 100 * kNsPerUs;
  cfg.lease_ttl = 300 * kNsPerUs;
  const NodeId victim = 5;
  cfg.faults.events.push_back(FaultScript::fail_node(30 * kNsPerUs, victim));

  // RPS spraying aggregates ~4 links of bandwidth, so the doomed flow must
  // be big enough to still be mid-transfer when the victim dies at 30 us.
  std::vector<FlowArrival> arrivals;
  arrivals.push_back({10 * kNsPerUs, 0, victim, 256 * 1024, 1.0, 0, -1});  // doomed
  arrivals.push_back({10 * kNsPerUs, 2, 10, 32 * 1024, 1.0, 0, -1});       // fine
  R2c2Sim simulator(topo, router, cfg);
  simulator.add_flows(arrivals);
  const RunMetrics m = simulator.run();

  EXPECT_EQ(m.flow_aborts, 1u);
  ASSERT_EQ(m.flows.size(), 2u);
  const sim::FlowRecord& doomed = m.flows[0];
  const sim::FlowRecord& fine = m.flows[1];
  EXPECT_TRUE(doomed.aborted);
  EXPECT_FALSE(doomed.finished());
  EXPECT_GT(doomed.aborted_at, doomed.arrival);
  EXPECT_TRUE(doomed.resolved());
  EXPECT_TRUE(fine.finished());
  EXPECT_FALSE(fine.aborted);
  EXPECT_GT(m.drops + m.failed_link_drops, 0u);
}

// --- Snapshot round trip with gray state ------------------------------------

TEST(GraySnapshot, MidWaveSnapshotResumesBitIdentically) {
  // Snapshot *inside* a degradation episode (loss active, links demoted,
  // suspicion EWMAs mid-flight) and resume in a fresh simulator: every
  // subsequent digest and the final metrics must match the straight run.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg = adaptive_config();
  Rng chaos_rng(17);
  ChaosConfig cc;
  cc.waves = 2;
  cc.node_waves = 1;
  cc.gray_waves = 2;
  cc.grays_per_wave = 2;
  cc.start = 40 * kNsPerUs;
  cc.mean_wave_gap = 200 * kNsPerUs;
  cc.mean_down_time = 300 * kNsPerUs;
  cc.mean_gray_time = 500 * kNsPerUs;
  cfg.faults = sim::make_chaos_script(topo, chaos_rng, cc);
  ASSERT_FALSE(cfg.faults.empty());
  const std::vector<FlowArrival> arrivals = mesh_workload(topo, 50, 41);

  // Straight run, digesting every 20 us.
  const TimeNs step = 20 * kNsPerUs;
  R2c2Sim straight(topo, router, cfg);
  straight.add_flows(arrivals);
  std::vector<std::pair<TimeNs, std::uint64_t>> trail;
  TimeNs t = 0;
  while (!straight.idle()) {
    t += step;
    straight.run_until(t);
    trail.emplace_back(t, straight.state_digest());
  }

  // Snapshot leg: pick a boundary mid-run — inside the fault activity
  // window, with degradations applied and suspicion accrued.
  ASSERT_GE(trail.size(), 8u);
  const TimeNs snap_at = trail[trail.size() / 2].first;
  R2c2Sim head(topo, router, cfg);
  head.add_flows(arrivals);
  head.run_until(snap_at);
  EXPECT_GT(head.collect_metrics().gray_drops, 0u);  // genuinely mid-wave
  snapshot::ArchiveWriter w;
  head.save(w);

  R2c2Sim resumed(topo, router, cfg);
  resumed.add_flows(arrivals);
  snapshot::ArchiveReader r{w.finish()};
  resumed.load(r);
  EXPECT_EQ(resumed.now(), snap_at);

  t = snap_at;
  std::size_t idx = trail.size() / 2 + 1;  // next digest point after snap_at
  while (!resumed.idle()) {
    t += step;
    resumed.run_until(t);
    ASSERT_LT(idx, trail.size());
    EXPECT_EQ(resumed.state_digest(), trail[idx].second) << "at t=" << t;
    ++idx;
  }
  EXPECT_EQ(idx, trail.size());
  EXPECT_EQ(resumed.state_digest(), straight.state_digest());
  const RunMetrics ma = straight.collect_metrics();
  const RunMetrics mb = resumed.collect_metrics();
  EXPECT_EQ(ma.gray_drops, mb.gray_drops);
  EXPECT_EQ(ma.links_demoted, mb.links_demoted);
  EXPECT_EQ(ma.flow_aborts, mb.flow_aborts);
  ASSERT_EQ(ma.flows.size(), mb.flows.size());
  for (std::size_t i = 0; i < ma.flows.size(); ++i) {
    EXPECT_EQ(ma.flows[i].completed, mb.flows[i].completed);
    EXPECT_EQ(ma.flows[i].aborted, mb.flows[i].aborted);
    EXPECT_EQ(ma.flows[i].aborted_at, mb.flows[i].aborted_at);
  }
}

// --- Congestion-aware (adaptive) routing ------------------------------------

R2c2SimConfig congestion_aware_config() {
  R2c2SimConfig cfg = adaptive_config();
  cfg.congestion_aware = true;
  cfg.congestion_interval = 20 * kNsPerUs;
  cfg.ecn_threshold_bytes = 4 * 1024;  // low enough that real queues mark
  return cfg;
}

TEST(AdaptiveRouting, UnmarkedRunKeepsStaticRoutingTrajectory) {
  // congestion_aware=on with a threshold no queue ever reaches must leave
  // every routing draw bit-identical to congestion_aware=off: the sampling
  // ticks run (extra events, different event totals) but every mark stays
  // exactly 0.0, so the biased walk degenerates to the uniform one and the
  // flows land on the same links at the same times.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig off = adaptive_config();
  R2c2SimConfig on = congestion_aware_config();
  on.ecn_threshold_bytes = std::uint64_t{1} << 40;  // unreachable
  R2c2Sim a(topo, router, off);
  R2c2Sim b(topo, router, on);
  a.add_flows(mesh_workload(topo, 40, 37));
  b.add_flows(mesh_workload(topo, 40, 37));
  const RunMetrics ma = a.run();
  const RunMetrics mb = b.run();
  ASSERT_EQ(ma.flows.size(), mb.flows.size());
  for (std::size_t i = 0; i < ma.flows.size(); ++i) {
    EXPECT_EQ(ma.flows[i].completed, mb.flows[i].completed);
  }
  EXPECT_EQ(ma.data_bytes_on_wire, mb.data_bytes_on_wire);
  EXPECT_EQ(ma.drops, mb.drops);
}

TEST(AdaptiveRouting, WorkerCountInvariantDigestsUnderGrayFault) {
  // The acceptance bar for the adaptive mode: with live congestion marks
  // steering the spray AND a gray fault demoting a link, the sharded run's
  // final state digest must not depend on the worker count.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  auto run_digest = [&](int workers, RunMetrics& out) {
    const Router router(topo);
    R2c2SimConfig cfg = congestion_aware_config();
    cfg.engine_shards = 4;
    cfg.engine_workers = workers;
    LinkDegrade gray;
    gray.loss_prob = 0.05;
    cfg.faults.events.push_back(
        FaultScript::degrade_link(40 * kNsPerUs, topo.find_link(0, 1), gray));
    R2c2Sim simulator(topo, router, cfg);
    simulator.add_flows(mesh_workload(topo, 60, 41));
    simulator.run_until(kNsPerSec);
    out = simulator.collect_metrics();
    return simulator.state_digest();
  };
  RunMetrics m1;
  RunMetrics m4;
  const std::uint64_t d1 = run_digest(1, m1);
  const std::uint64_t d4 = run_digest(4, m4);
  EXPECT_EQ(d1, d4);
  ASSERT_EQ(m1.flows.size(), m4.flows.size());
  for (std::size_t i = 0; i < m1.flows.size(); ++i) {
    EXPECT_EQ(m1.flows[i].completed, m4.flows[i].completed);
  }
}

TEST(AdaptiveRouting, SnapshotRoundTripRestoresCongestionState) {
  // Save mid-run while EWMA marks are live and the sampling tick is armed;
  // the resumed run must walk the exact digest trajectory of the straight
  // run (marks, epoch peaks and the tick flag all cross the archive).
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  R2c2SimConfig cfg = congestion_aware_config();
  LinkDegrade gray;
  gray.loss_prob = 0.05;
  cfg.faults.events.push_back(
      FaultScript::degrade_link(40 * kNsPerUs, topo.find_link(0, 1), gray));
  const std::vector<FlowArrival> arrivals = mesh_workload(topo, 50, 43);

  R2c2Sim straight(topo, router, cfg);
  straight.add_flows(arrivals);
  const TimeNs step = 50 * kNsPerUs;
  std::vector<std::pair<TimeNs, std::uint64_t>> trail;
  TimeNs t = 0;
  while (!straight.idle()) {
    t += step;
    straight.run_until(t);
    trail.emplace_back(t, straight.state_digest());
  }
  ASSERT_GT(trail.size(), 4u);

  const TimeNs snap_at = trail[trail.size() / 2].first;
  R2c2Sim head(topo, router, cfg);
  head.add_flows(arrivals);
  head.run_until(snap_at);
  snapshot::ArchiveWriter w;
  head.save(w);

  R2c2Sim resumed(topo, router, cfg);
  resumed.add_flows(arrivals);
  snapshot::ArchiveReader r{w.finish()};
  resumed.load(r);
  EXPECT_EQ(resumed.now(), snap_at);
  EXPECT_EQ(resumed.state_digest(), trail[trail.size() / 2].second);

  t = snap_at;
  std::size_t idx = trail.size() / 2 + 1;
  while (!resumed.idle()) {
    t += step;
    resumed.run_until(t);
    ASSERT_LT(idx, trail.size());
    EXPECT_EQ(resumed.state_digest(), trail[idx].second) << "at t=" << t;
    ++idx;
  }
  EXPECT_EQ(idx, trail.size());
  EXPECT_EQ(resumed.state_digest(), straight.state_digest());
}

}  // namespace
}  // namespace r2c2
