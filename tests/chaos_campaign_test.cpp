// Chaos campaign harness: seeded gray-chaos scenario generation, the
// machine-checked invariants, ddmin shrinking of a violating fault script
// down to a minimal repro, and the repro archive round trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "chaos/campaign.h"

namespace r2c2 {
namespace {

namespace fs = std::filesystem;

chaos::CampaignConfig small_config() {
  chaos::CampaignConfig config;
  config.scenarios = 2;
  config.seed = 7;
  config.flows = 24;
  config.alt_workers = 2;
  return config;
}

TEST(ChaosScenario, GenerationIsDeterministic) {
  const chaos::CampaignConfig config = small_config();
  const chaos::ScenarioSpec a = chaos::make_gray_scenario(config, 1);
  const chaos::ScenarioSpec b = chaos::make_gray_scenario(config, 1);
  ASSERT_EQ(a.sim_config.faults.events.size(), b.sim_config.faults.events.size());
  for (std::size_t i = 0; i < a.sim_config.faults.events.size(); ++i) {
    const sim::FaultEvent& ea = a.sim_config.faults.events[i];
    const sim::FaultEvent& eb = b.sim_config.faults.events[i];
    EXPECT_EQ(ea.at, eb.at);
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.link, eb.link);
    EXPECT_EQ(ea.node, eb.node);
  }
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    EXPECT_EQ(a.arrivals[i].start, b.arrivals[i].start);
    EXPECT_EQ(a.arrivals[i].src, b.arrivals[i].src);
    EXPECT_EQ(a.arrivals[i].dst, b.arrivals[i].dst);
    EXPECT_EQ(a.arrivals[i].bytes, b.arrivals[i].bytes);
  }
  // Different indices draw different scripts (seeds are splitmix-derived).
  const chaos::ScenarioSpec c = chaos::make_gray_scenario(config, 0);
  EXPECT_NE(c.sim_config.seed, a.sim_config.seed);
}

TEST(ChaosCampaign, SmallCampaignPassesAllInvariants) {
  const chaos::CampaignConfig config = small_config();
  const chaos::CampaignResult result = chaos::run_campaign(config);
  EXPECT_TRUE(result.passed());
  EXPECT_EQ(result.failed, 0);
  ASSERT_EQ(result.scenarios.size(), 2u);
  for (const chaos::ScenarioOutcome& s : result.scenarios) {
    EXPECT_TRUE(s.passed);
    EXPECT_TRUE(s.violations.empty());
    EXPECT_GT(s.fault_events, 0);
    EXPECT_NE(s.final_digest, 0u);
  }
  // Same config, same campaign: outcomes are bit-identical.
  const chaos::CampaignResult again = chaos::run_campaign(config);
  ASSERT_EQ(again.scenarios.size(), result.scenarios.size());
  for (std::size_t i = 0; i < result.scenarios.size(); ++i) {
    EXPECT_EQ(again.scenarios[i].final_digest, result.scenarios[i].final_digest);
    EXPECT_EQ(again.scenarios[i].metrics_digest, result.scenarios[i].metrics_digest);
  }
}

TEST(ChaosCampaign, BrokenInvariantShrinksToMinimalRepro) {
  // Force a violation: recovery_bound=0 makes any hard-failure detection a
  // "rebuild took too long" finding. The campaign must fail, shrink the
  // fault script to a smaller repro, archive it, and the archived repro
  // must still trigger the same invariant when replayed from disk.
  chaos::CampaignConfig config;
  config.scenarios = 1;
  config.seed = 7;
  config.flows = 16;
  config.alt_workers = 0;    // skip the worker-equivalence leg for speed
  config.check_resume = false;
  config.recovery_bound = 0;
  const fs::path dir = fs::temp_directory_path() / "r2c2-chaos-test";
  fs::create_directories(dir);
  config.artifact_dir = dir.string();

  const chaos::CampaignResult result = chaos::run_campaign(config);
  EXPECT_FALSE(result.passed());
  ASSERT_EQ(result.scenarios.size(), 1u);
  const chaos::ScenarioOutcome& s = result.scenarios[0];
  EXPECT_FALSE(s.passed);
  ASSERT_FALSE(s.violations.empty());
  EXPECT_EQ(s.violations[0].invariant, "recovery-bound");
  ASSERT_FALSE(s.repro_path.empty());
  ASSERT_TRUE(fs::exists(s.repro_path));

  const chaos::Repro repro = chaos::load_repro(s.repro_path);
  EXPECT_EQ(repro.invariant, "recovery-bound");
  EXPECT_EQ(repro.index, 0);
  EXPECT_EQ(repro.config.seed, config.seed);
  const chaos::ScenarioSpec full = chaos::make_gray_scenario(config, 0);
  EXPECT_LT(repro.script.events.size(), full.sim_config.faults.events.size());
  EXPECT_GT(repro.script.events.size(), 0u);
  // Minimality (ddmin's 1-minimal guarantee was verified during the
  // shrink); here we check the archived script still reproduces.
  EXPECT_TRUE(chaos::repro_triggers(repro));

  fs::remove_all(dir);
}

TEST(ChaosRepro, ArchiveRoundTripsEveryField) {
  chaos::Repro repro;
  repro.config = small_config();
  repro.config.digest_every = 17 * kNsPerUs;
  repro.config.recovery_bound = 123 * kNsPerUs;
  repro.index = 1;
  repro.invariant = "byte-conservation";
  repro.detail = "delivered 12345 bytes but only 12000 on the wire";
  sim::LinkDegrade gray;
  gray.loss_prob = 0.0375;
  gray.corrupt_prob = 1.25e-4;
  gray.added_latency = 640;
  gray.jitter = 321;
  repro.script.events.push_back(sim::FaultScript::fail_link(10 * kNsPerUs, 3));
  repro.script.events.push_back(sim::FaultScript::degrade_one_way(20 * kNsPerUs, 5, gray));
  sim::LinkDegrade flap;
  flap.flap_period = 50 * kNsPerUs;
  flap.flap_down = 13 * kNsPerUs;
  repro.script.events.push_back(sim::FaultScript::degrade_link(30 * kNsPerUs, 7, flap));
  repro.script.events.push_back(sim::FaultScript::fail_node(40 * kNsPerUs, 11));

  const fs::path file = fs::temp_directory_path() / "r2c2-chaos-roundtrip.txt";
  chaos::write_repro(file.string(), repro);
  const chaos::Repro back = chaos::load_repro(file.string());

  EXPECT_EQ(back.config.seed, repro.config.seed);
  EXPECT_EQ(back.config.engine_shards, repro.config.engine_shards);
  EXPECT_EQ(back.config.base_workers, repro.config.base_workers);
  EXPECT_EQ(back.config.alt_workers, repro.config.alt_workers);
  EXPECT_EQ(back.config.flows, repro.config.flows);
  EXPECT_EQ(back.config.digest_every, repro.config.digest_every);
  EXPECT_EQ(back.config.recovery_bound, repro.config.recovery_bound);
  EXPECT_EQ(back.index, repro.index);
  EXPECT_EQ(back.invariant, repro.invariant);
  EXPECT_EQ(back.detail, repro.detail);
  ASSERT_EQ(back.script.events.size(), repro.script.events.size());
  for (std::size_t i = 0; i < repro.script.events.size(); ++i) {
    const sim::FaultEvent& a = repro.script.events[i];
    const sim::FaultEvent& b = back.script.events[i];
    EXPECT_EQ(b.at, a.at);
    EXPECT_EQ(b.kind, a.kind);
    EXPECT_EQ(b.link, a.link);
    EXPECT_EQ(b.node, a.node);
    EXPECT_DOUBLE_EQ(b.gray.loss_prob, a.gray.loss_prob);
    EXPECT_DOUBLE_EQ(b.gray.corrupt_prob, a.gray.corrupt_prob);
    EXPECT_EQ(b.gray.added_latency, a.gray.added_latency);
    EXPECT_EQ(b.gray.jitter, a.gray.jitter);
    EXPECT_EQ(b.gray.flap_period, a.gray.flap_period);
    EXPECT_EQ(b.gray.flap_down, a.gray.flap_down);
  }
  std::remove(file.string().c_str());
}

TEST(ChaosShrink, ShrunkenScriptIsOneMinimal) {
  // ddmin postcondition: removing any single event from the shrunken
  // script makes the violation disappear.
  chaos::CampaignConfig config;
  config.scenarios = 1;
  config.seed = 7;
  config.flows = 16;
  config.alt_workers = 0;
  config.check_resume = false;
  config.recovery_bound = 0;
  const chaos::ScenarioSpec spec = chaos::make_gray_scenario(config, 0);
  const sim::FaultScript shrunk =
      chaos::shrink_fault_script(spec, config, "recovery-bound");
  ASSERT_GT(shrunk.events.size(), 0u);
  ASSERT_LT(shrunk.events.size(), spec.sim_config.faults.events.size());

  chaos::Repro repro;
  repro.config = config;
  repro.index = 0;
  repro.invariant = "recovery-bound";
  repro.script = shrunk;
  EXPECT_TRUE(chaos::repro_triggers(repro));
  for (std::size_t skip = 0; skip < shrunk.events.size(); ++skip) {
    chaos::Repro smaller = repro;
    smaller.script.events.clear();
    for (std::size_t i = 0; i < shrunk.events.size(); ++i) {
      if (i != skip) smaller.script.events.push_back(shrunk.events[i]);
    }
    EXPECT_FALSE(chaos::repro_triggers(smaller))
        << "dropping event " << skip << " still violates: not 1-minimal";
  }
}

}  // namespace
}  // namespace r2c2
