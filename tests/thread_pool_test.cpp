// ThreadPool: parallel_for correctness and determinism, submit/wait,
// work-stealing stats, exception propagation, degenerate worker counts,
// and the sweep runner's order guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/pool_gauges.h"

namespace r2c2 {
namespace {

std::uint64_t mix(std::uint64_t v) { return splitmix64(v); }

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int workers : {0, 1, 3, 7}) {
    ThreadPool pool(workers);
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                                std::size_t{64}, std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&](std::size_t i, int lane) {
        ASSERT_GE(lane, 0);
        ASSERT_LT(lane, pool.lanes());
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "workers=" << workers << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, IndexAddressedResultsAreDeterministic) {
  // The determinism contract: out[i] = f(i) gives identical vectors for
  // every worker count because slots are index-addressed.
  const std::size_t n = 2048;
  std::vector<std::uint64_t> expected(n);
  for (std::size_t i = 0; i < n; ++i) expected[i] = mix(i);
  for (const int workers : {0, 1, 2, 7}) {
    ThreadPool pool(workers);
    std::vector<std::uint64_t> out(n, 0);
    pool.parallel_for(n, [&](std::size_t i, int) { out[i] = mix(i); });
    EXPECT_EQ(out, expected) << "workers=" << workers;
  }
}

TEST(ThreadPool, LaneIsUniqueAmongConcurrentBodies) {
  // Two bodies running at the same time must never share a lane id — this
  // is what makes per-lane scratch race-free. Track per-lane reentrancy.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> in_lane(static_cast<std::size_t>(pool.lanes()));
  std::atomic<bool> clash{false};
  pool.parallel_for(400, [&](std::size_t, int lane) {
    if (in_lane[static_cast<std::size_t>(lane)].fetch_add(1) != 0) clash.store(true);
    std::this_thread::sleep_for(std::chrono::microseconds(20));
    in_lane[static_cast<std::size_t>(lane)].fetch_sub(1);
  });
  EXPECT_FALSE(clash.load());
}

TEST(ThreadPool, SubmitAndWaitRunsEverything) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 50);
  // The pool is reusable after wait().
  for (int i = 0; i < 10; ++i) pool.submit([&] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 60);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i, int) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives the exceptional batch.
  std::atomic<int> ran{0};
  pool.parallel_for(16, [&](std::size_t, int) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, StatsCountExecutedTasks) {
  ThreadPool pool(2);
  const auto before = pool.stats();
  pool.parallel_for(256, [](std::size_t, int) {});
  const auto after = pool.stats();
  EXPECT_GT(after.executed, before.executed);
  EXPECT_GE(after.stolen, before.stolen);  // stealing is possible, not required
}

TEST(ThreadPool, ZeroWorkersRunsInlineOnCaller) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  EXPECT_EQ(pool.lanes(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> ran(8);
  pool.parallel_for(8, [&](std::size_t i, int lane) {
    EXPECT_EQ(lane, 0);
    ran[i] = std::this_thread::get_id();
  });
  for (const auto& id : ran) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A body that calls back into the pool must not deadlock: the inner call
  // degrades to inline execution on the worker's lane.
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  pool.parallel_for(8, [&](std::size_t, int) {
    pool.parallel_for(4, [&](std::size_t, int) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 32);
}

TEST(ThreadPool, PublishesStatsAsGauges) {
  ThreadPool pool(1);
  pool.parallel_for(32, [](std::size_t, int) {});
  obs::MetricsRegistry registry;
  obs::publish_pool_stats(pool, registry, "test_pool");
  EXPECT_EQ(registry.gauge("test_pool.workers").value(), 1.0);
  EXPECT_GE(registry.gauge("test_pool.tasks_executed").value(), 1.0);
}

TEST(Sweep, ResultsComeBackInInputOrder) {
  // The bench sweep pattern: jobs finishing out of order (later items
  // sleep less) must still land in input order because slots are
  // index-addressed.
  ThreadPool pool(3);
  const std::size_t n = 24;
  std::vector<int> out(n, -1);
  pool.parallel_for(n, [&](std::size_t i, int) {
    // Earlier items take longer, so completion order inverts input order.
    std::this_thread::sleep_for(std::chrono::microseconds((n - i) * 50));
    out[i] = static_cast<int>(i) * 3;
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

}  // namespace
}  // namespace r2c2
