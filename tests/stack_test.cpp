#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <vector>

#include "r2c2/stack.h"

namespace r2c2 {
namespace {

// An in-memory rack: every node runs a real R2c2Stack; control packets are
// carried through a message queue (pump() drains it), modeling instant,
// loss-free links. This exercises the full control plane — wire formats,
// broadcast fan-out over the FIBs, flow tables, rate computation — without
// a data plane.
class TestRack {
 public:
  explicit TestRack(std::vector<int> dims, TimeNs demand_period = kNsPerMs)
      : topo_(make_torus(dims, 10 * kGbps, 100)), router_(topo_), trees_(topo_, 2) {
    ctx_.topo = &topo_;
    ctx_.router = &router_;
    ctx_.trees = &trees_;
    ctx_.demand_period = demand_period;
    for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
      R2c2Stack::Callbacks cb;
      cb.send_control = [this](NodeId next, std::vector<std::uint8_t> bytes) {
        queue_.emplace_back(next, std::move(bytes));
      };
      cb.set_rate = [this, n](FlowId flow, Bps rate) { rates_[n][flow] = rate; };
      rates_.emplace_back();
      stacks_.push_back(std::make_unique<R2c2Stack>(n, ctx_, std::move(cb), 100 + n));
    }
  }

  // Delivers queued control packets until quiescent; returns deliveries.
  int pump() {
    int delivered = 0;
    while (!queue_.empty()) {
      auto [node, bytes] = std::move(queue_.front());
      queue_.pop_front();
      stacks_[node]->on_control_packet(bytes);
      ++delivered;
    }
    return delivered;
  }

  void recompute_all() {
    for (auto& s : stacks_) s->recompute();
  }

  R2c2Stack& stack(NodeId n) { return *stacks_[n]; }
  Bps rate(NodeId n, FlowId f) const { return rates_[n].count(f) ? rates_[n].at(f) : -1.0; }
  const Topology& topo() const { return topo_; }
  Router& router() { return router_; }

 private:
  Topology topo_;
  Router router_;
  BroadcastTrees trees_;
  RackContext ctx_;
  std::vector<std::unique_ptr<R2c2Stack>> stacks_;
  std::vector<std::unordered_map<FlowId, Bps>> rates_;
  std::deque<std::pair<NodeId, std::vector<std::uint8_t>>> queue_;
};

TEST(Stack, FlowStartReachesEveryNode) {
  TestRack rack({4, 4});
  rack.stack(0).open_flow(5);
  // One broadcast = n-1 deliveries over the spanning tree.
  EXPECT_EQ(rack.pump(), 15);
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_EQ(rack.stack(n).view().size(), 1u) << "node " << n;
  }
}

TEST(Stack, FlowFinishClearsEverywhere) {
  TestRack rack({4, 4});
  const FlowId id = rack.stack(0).open_flow(5);
  rack.pump();
  rack.stack(0).close_flow(id);
  rack.pump();
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_EQ(rack.stack(n).view().size(), 0u) << "node " << n;
  }
}

TEST(Stack, SenderGetsRateImmediately) {
  TestRack rack({4, 4});
  const FlowId id = rack.stack(0).open_flow(5);
  // Before any pump: the sender already programmed a limiter.
  EXPECT_GT(rack.rate(0, id), 0.0);
}

TEST(Stack, ViewsConvergeToSameHash) {
  TestRack rack({4, 4});
  rack.stack(0).open_flow(5);
  rack.stack(3).open_flow(9);
  rack.stack(12).open_flow(1);
  rack.pump();
  const std::uint64_t h = rack.stack(0).view().view_hash();
  for (NodeId n = 1; n < 16; ++n) {
    EXPECT_EQ(rack.stack(n).view().view_hash(), h) << "node " << n;
  }
}

TEST(Stack, CompetingFlowsGetFairRates) {
  TestRack rack({8});  // ring
  const FlowId a = rack.stack(0).open_flow(2, {.alg = RouteAlg::kDor});
  const FlowId b = rack.stack(1).open_flow(3, {.alg = RouteAlg::kDor});  // shares 1->2... 2->3
  rack.pump();
  rack.recompute_all();
  // Both flows share link 1->2 (DOR forward); fair share with 5% headroom.
  EXPECT_NEAR(rack.rate(0, a), 4.75e9, 1e7);
  EXPECT_NEAR(rack.rate(1, b), 4.75e9, 1e7);
}

TEST(Stack, WeightChangesAllocation) {
  TestRack rack({8});
  const FlowId a = rack.stack(0).open_flow(2, {.alg = RouteAlg::kDor, .weight = 3.0});
  const FlowId b = rack.stack(1).open_flow(3, {.alg = RouteAlg::kDor, .weight = 1.0});
  rack.pump();
  rack.recompute_all();
  EXPECT_NEAR(rack.rate(0, a) / rack.rate(1, b), 3.0, 0.05);
}

TEST(Stack, PriorityStarvesBackground) {
  TestRack rack({8});
  const FlowId bg = rack.stack(0).open_flow(2, {.alg = RouteAlg::kDor, .priority = 1});
  const FlowId fg = rack.stack(1).open_flow(3, {.alg = RouteAlg::kDor, .priority = 0});
  rack.pump();
  rack.recompute_all();
  EXPECT_NEAR(rack.rate(1, fg), 9.5e9, 1e7);
  EXPECT_NEAR(rack.rate(0, bg), 0.0, 1.0);
}

TEST(Stack, DemandUpdateFreesBandwidthForOthers) {
  TestRack rack({8}, /*demand_period=*/kNsPerMs);
  const FlowId a = rack.stack(0).open_flow(2, {.alg = RouteAlg::kDor});
  const FlowId b = rack.stack(1).open_flow(3, {.alg = RouteAlg::kDor});
  rack.pump();
  rack.recompute_all();
  // Flow a turns host-limited: it only achieves 1 Gbps with no backlog.
  for (int i = 0; i < 12; ++i) rack.stack(0).note_backlog(a, 0, 1e9);
  rack.pump();
  rack.recompute_all();
  EXPECT_LT(rack.rate(0, a), 2e9);
  EXPECT_GT(rack.rate(1, b), 8e9);
}

TEST(Stack, PickRouteIsValidSourceRoute) {
  TestRack rack({4, 4});
  const FlowId id = rack.stack(0).open_flow(10, {.alg = RouteAlg::kRps});
  for (int i = 0; i < 50; ++i) {
    const RouteCode route = rack.stack(0).pick_route(id);
    NodeId at = 0;
    for (int h = 0; h < route.length(); ++h) {
      at = rack.topo().link(rack.topo().out_link_by_port(at, route.port_at(h))).to;
    }
    EXPECT_EQ(at, 10);
  }
}

TEST(Stack, RouteSelectionBroadcastsAndApplies) {
  TestRack rack({4, 4});
  // Saturate: many flows, all RPS.
  std::vector<FlowId> ids;
  for (NodeId n = 0; n < 8; ++n) {
    ids.push_back(rack.stack(n).open_flow(static_cast<NodeId>(15 - n)));
  }
  rack.pump();
  SelectionConfig cfg;
  cfg.population = 20;
  cfg.max_generations = 6;
  rack.stack(0).run_route_selection(cfg);
  rack.pump();
  // All views still agree after the route-update broadcast.
  const std::uint64_t h = rack.stack(0).view().view_hash();
  for (NodeId n = 1; n < 16; ++n) EXPECT_EQ(rack.stack(n).view().view_hash(), h);
}

TEST(Stack, CorruptedControlPacketIsDropped) {
  TestRack rack({4, 4});
  std::vector<std::uint8_t> garbage(16, 0xab);
  garbage[0] = static_cast<std::uint8_t>(PacketType::kFlowStart);
  rack.stack(3).on_control_packet(garbage);  // bad checksum
  EXPECT_EQ(rack.stack(3).view().size(), 0u);
  EXPECT_EQ(rack.pump(), 0);  // nothing forwarded
}

TEST(Stack, FlowIdsEncodeNodeAndFseq) {
  TestRack rack({4, 4});
  const FlowId id = rack.stack(3).open_flow(7);
  EXPECT_EQ(id >> 16, 3u);
  rack.stack(3).close_flow(id);
  // Ids rotate through fseq values; a second flow gets a fresh id.
  const FlowId id2 = rack.stack(3).open_flow(7);
  EXPECT_NE(id, id2);
}

TEST(Stack, OpenFlowValidation) {
  TestRack rack({4, 4});
  EXPECT_THROW(rack.stack(2).open_flow(2), std::invalid_argument);  // to self
  EXPECT_THROW(rack.stack(2).close_flow(12345), std::out_of_range);
}

TEST(Stack, BroadcastCounterTracksEvents) {
  TestRack rack({4, 4});
  const FlowId id = rack.stack(0).open_flow(5);
  rack.stack(0).close_flow(id);
  EXPECT_EQ(rack.stack(0).broadcasts_sent(), 2u);
}

}  // namespace
}  // namespace r2c2
