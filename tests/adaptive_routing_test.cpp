// Congestion-aware spraying and the tiled kVlb/kWlb weight cache.
//
// Covers the two router-level contracts the adaptive data plane rests on:
//  - SprayBias semantics on the folded-Clos path: an empty (or all-zero)
//    bias reproduces the unbiased rng stream draw for draw; a fault
//    penalty or congestion mark on one uplink sheds spray from exactly
//    that directed link, proportionally, without removing it.
//  - The tiled VLB/WLB table: resident bytes stay within the configured
//    budget under LRU eviction, evicted entries re-derive to identical
//    weights, warming touches only the requested tiles, and steady-state
//    reads on a warm working set perform zero heap allocations (counted
//    by a global operator-new hook).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "routing/routing.h"
#include "topology/topology.h"

// --- Counting allocator hook ------------------------------------------------
// Counts every global allocation while g_counting is set. Deallocation is
// never counted: the contract under test is "no steady-state allocation",
// and frees of previously counted blocks are fine.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};
}  // namespace

// GCC's new/delete pairing heuristic misfires on these hooks: every path
// ends in malloc/aligned_alloc, both of which std::free releases.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace r2c2 {
namespace {

// servers 0..7 (two per leaf), leaves 8..11, spines 12..13.
Topology small_clos() {
  return make_folded_clos({.servers_per_leaf = 2,
                           .num_leaves = 4,
                           .num_spines = 2,
                           .bandwidth = kGbps,
                           .latency = 100});
}

// Fraction of kTrials sprays from src to dst whose path crosses the
// directed edge (from, to).
double edge_share(const Router& router, RouteAlg alg, NodeId src, NodeId dst, NodeId from,
                  NodeId to, const SprayBias& bias, int trials, std::uint64_t seed) {
  Rng rng(seed);
  Path path;
  int through = 0;
  for (int i = 0; i < trials; ++i) {
    router.pick_path_into(alg, src, dst, rng, path, bias);
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      if (path[h] == from && path[h + 1] == to) {
        ++through;
        break;
      }
    }
  }
  return static_cast<double>(through) / trials;
}

// --- SprayBias on the folded-Clos path --------------------------------------

TEST(ClosSprayBias, EmptyAndAllZeroBiasMatchBaseDrawForDraw) {
  const Topology topo = small_clos();
  const Router router(topo);
  const std::vector<double> zero_penalty(topo.num_links(), 0.0);
  const std::vector<double> zero_congestion(topo.num_links(), 0.0);

  for (const RouteAlg alg : {RouteAlg::kRps, RouteAlg::kVlb}) {
    Rng base_rng(7), empty_rng(7), zero_rng(7);
    Path base, via_empty, via_zero;
    SprayBias empty_bias;
    SprayBias zero_bias;
    zero_bias.penalty = std::span<const double>(zero_penalty);
    zero_bias.congestion = std::span<const double>(zero_congestion);
    zero_bias.congestion_gain = 4.0;  // armed, but every mark is exactly 0
    for (int i = 0; i < 300; ++i) {
      const NodeId src = static_cast<NodeId>(i % 8);
      const NodeId dst = static_cast<NodeId>((i * 5 + 2) % 8);
      if (src == dst) continue;
      router.pick_path_into(alg, src, dst, base_rng, base);
      router.pick_path_into(alg, src, dst, empty_rng, via_empty, empty_bias);
      router.pick_path_into(alg, src, dst, zero_rng, via_zero, zero_bias);
      // Bit-identical rng consumption: zero-suspect / zero-congestion runs
      // keep the exact trajectory of the unbiased data plane.
      EXPECT_EQ(base, via_empty) << to_string(alg) << " " << i;
      EXPECT_EQ(base, via_zero) << to_string(alg) << " " << i;
    }
  }
}

TEST(ClosSprayBias, DegradedUplinkShedsSprayAsymmetrically) {
  // The PR 7 gray scenario on the Clos path: one leaf->spine uplink is
  // suspected and demoted. Spray through that directed edge must drop to
  // roughly weight/(weight + 1) of the pair, the sibling spine picks up the
  // slack, and the *reverse* direction (spine->leaf, a different directed
  // link) stays untouched — the penalty is asymmetric by construction.
  const Topology topo = small_clos();
  const Router router(topo);
  const NodeId leaf0 = 8, leaf1 = 9, spine0 = 12, spine1 = 13;

  std::vector<double> penalty(topo.num_links(), 0.0);
  penalty[topo.find_link(leaf0, spine0)] = 8.0;  // weight 1/9 vs 1
  SprayBias bias;
  bias.penalty = std::span<const double>(penalty);

  const int kTrials = 4000;
  // 0 lives under leaf0, 2 under leaf1: every path is 0,leaf0,spine,leaf1,2.
  const double up_bad = edge_share(router, RouteAlg::kRps, 0, 2, leaf0, spine0, bias, kTrials, 3);
  const double up_good = edge_share(router, RouteAlg::kRps, 0, 2, leaf0, spine1, bias, kTrials, 3);
  EXPECT_LT(up_bad, 0.20);  // fair share 0.5 -> ~0.1
  EXPECT_GT(up_bad, 0.0);   // demoted, not removed
  EXPECT_GT(up_good, 0.80);

  // Reverse flow 2 -> 0 climbs leaf1->spine and descends spine->leaf0; the
  // penalized directed link (leaf0->spine0) is never on those paths, so the
  // spine choice stays an unbiased coin flip.
  const double rev_via_spine0 =
      edge_share(router, RouteAlg::kRps, 2, 0, leaf1, spine0, bias, kTrials, 5);
  EXPECT_NEAR(rev_via_spine0, 0.5, 0.05);
}

TEST(ClosSprayBias, CongestionMarkSteersSprayOffHotUplink) {
  const Topology topo = small_clos();
  const Router router(topo);
  const NodeId leaf0 = 8, spine0 = 12, spine1 = 13;

  std::vector<double> congestion(topo.num_links(), 0.0);
  congestion[topo.find_link(leaf0, spine0)] = 1.0;  // saturated EWMA mark
  SprayBias bias;
  bias.congestion = std::span<const double>(congestion);
  bias.congestion_gain = 4.0;  // candidate weight 1/(1+4) vs 1

  const int kTrials = 4000;
  const double hot = edge_share(router, RouteAlg::kRps, 0, 2, leaf0, spine0, bias, kTrials, 9);
  const double cold = edge_share(router, RouteAlg::kRps, 0, 2, leaf0, spine1, bias, kTrials, 9);
  // Expected share 1/6 against the clean sibling's 5/6.
  EXPECT_LT(hot, 0.25);
  EXPECT_GT(hot, 0.05);
  EXPECT_GT(cold, 0.75);
}

TEST(ClosSprayBias, PenaltyAndCongestionCompose) {
  // Penalty on one uplink, congestion on the other: both demoted, so the
  // spray splits per the combined weights 1/(1+p) vs 1/(1+g*c) — with
  // p = 8 and g*c = 8, back to an even (but doubly damped) coin flip.
  const Topology topo = small_clos();
  const Router router(topo);
  const NodeId leaf0 = 8, spine0 = 12, spine1 = 13;

  std::vector<double> penalty(topo.num_links(), 0.0);
  std::vector<double> congestion(topo.num_links(), 0.0);
  penalty[topo.find_link(leaf0, spine0)] = 8.0;
  congestion[topo.find_link(leaf0, spine1)] = 2.0;
  SprayBias bias;
  bias.penalty = std::span<const double>(penalty);
  bias.congestion = std::span<const double>(congestion);
  bias.congestion_gain = 4.0;

  const double via0 = edge_share(router, RouteAlg::kRps, 0, 2, leaf0, spine0, bias, 4000, 13);
  EXPECT_NEAR(via0, 0.5, 0.05);
}

TEST(ClosSprayBias, PlaneToSubstrateMapRedirectsCongestionLookup) {
  // Simulates the degraded decision plane: the router's link ids differ
  // from the substrate ids the congestion span is indexed by. Remap the
  // leaf0->spine0 uplink to an arbitrary substrate slot and mark only that
  // slot hot — the walk must still avoid leaf0->spine0.
  const Topology topo = small_clos();
  const Router router(topo);
  const NodeId leaf0 = 8, spine0 = 12;
  const LinkId uplink = topo.find_link(leaf0, spine0);

  const LinkId fake_substrate_slot = 0;  // any slot != uplink
  ASSERT_NE(uplink, fake_substrate_slot);
  std::vector<LinkId> map(topo.num_links());
  for (LinkId l = 0; l < static_cast<LinkId>(topo.num_links()); ++l) map[l] = l;
  map[uplink] = fake_substrate_slot;

  std::vector<double> congestion(topo.num_links(), 0.0);
  congestion[fake_substrate_slot] = 1.0;
  SprayBias bias;
  bias.congestion = std::span<const double>(congestion);
  bias.plane_to_substrate = std::span<const LinkId>(map);
  bias.congestion_gain = 8.0;

  const double hot = edge_share(router, RouteAlg::kRps, 0, 2, leaf0, spine0, bias, 4000, 17);
  EXPECT_LT(hot, 0.20);  // weight 1/9 via the remapped mark
  EXPECT_GT(hot, 0.0);
}

// --- Tiled kVlb/kWlb weight cache -------------------------------------------

TEST(TiledWeightTable, ResidentBytesStayWithinBudgetAndEvictedEntriesRederive) {
  const Topology topo = make_torus({8, 8}, kGbps, 100);
  // A budget far below the dense table: with 8x8 tiles over 64 nodes the
  // full kVlb table spans 64 tiles; 96 KiB holds only a handful.
  const std::uint64_t kBudget = 96 * 1024;
  const Router tiny(topo, Router::TileConfig{.tile_shape = 8, .max_resident_bytes = kBudget});
  const Router reference(topo);

  for (NodeId src = 0; src < topo.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (src == dst) continue;
      const LinkWeights got = tiny.link_weights(RouteAlg::kVlb, src, dst);
      const LinkWeights& want = reference.link_weights(RouteAlg::kVlb, src, dst);
      ASSERT_EQ(got.size(), want.size()) << src << "->" << dst;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].link, want[i].link);
        EXPECT_DOUBLE_EQ(got[i].fraction, want[i].fraction);
      }
      // The budget is an invariant, not an end-of-run property (one-tile
      // floor: the most recently touched tile is never evicted).
      const Router::TileStats st = tiny.tile_stats();
      EXPECT_LE(st.resident_bytes, kBudget) << src << "->" << dst;
    }
  }
  const Router::TileStats st = tiny.tile_stats();
  EXPECT_GT(st.evictions, 0u);
  EXPECT_GT(st.resident_tiles, 0u);
}

TEST(TiledWeightTable, WarmTilesTouchesOnlyRequestedTiles) {
  // Regression: precompute(kVlb) used to eagerly warm the *entire* dense
  // RPS table as a prerequisite. With tiling, warming a one-tile working
  // set must leave exactly one resident tile.
  const Topology topo = make_torus({8, 8}, kGbps, 100);
  const Router router(topo, Router::TileConfig{.tile_shape = 8});

  std::vector<std::pair<NodeId, NodeId>> working_set;
  for (NodeId src = 0; src < 8; ++src) {
    for (NodeId dst = 8; dst < 16; ++dst) working_set.push_back({src, dst});
  }
  router.warm_tiles(RouteAlg::kVlb, working_set);

  const Router::TileStats st = router.tile_stats();
  EXPECT_EQ(st.resident_tiles, 1u);
  EXPECT_GT(st.resident_bytes, 0u);
}

TEST(TiledWeightTable, SteadyStateReadsOnWarmWorkingSetDoNotAllocate) {
  const Topology topo = make_torus({8, 8}, kGbps, 100);
  const Router router(topo, Router::TileConfig{.tile_shape = 8});

  std::vector<std::pair<NodeId, NodeId>> working_set;
  for (NodeId src = 0; src < 8; ++src) {
    for (NodeId dst = 8; dst < 16; ++dst) {
      if (src != dst) working_set.push_back({src, dst});
    }
  }
  router.warm_tiles(RouteAlg::kVlb, working_set);
  // One read per pair settles the thread-local copy's capacity at the
  // largest entry in the set.
  double sink = 0.0;
  for (const auto& [src, dst] : working_set) {
    for (const LinkFraction& lf : router.link_weights(RouteAlg::kVlb, src, dst)) {
      sink += lf.fraction;
    }
  }
  const Router::TileStats before = router.tile_stats();

  g_alloc_count.store(0);
  g_counting.store(true);
  for (int round = 0; round < 10; ++round) {
    for (const auto& [src, dst] : working_set) {
      for (const LinkFraction& lf : router.link_weights(RouteAlg::kVlb, src, dst)) {
        sink += lf.fraction;
      }
    }
  }
  g_counting.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u) << "tiled reads allocated in steady state";
  EXPECT_GT(sink, 0.0);
  const Router::TileStats after = router.tile_stats();
  EXPECT_EQ(after.misses, before.misses) << "warm working set should only hit";
  EXPECT_GT(after.hits, before.hits);
}

TEST(TiledWeightTable, StatsCountHitsAndMisses) {
  const Topology topo = make_torus({4, 4}, kGbps, 100);
  const Router router(topo, Router::TileConfig{.tile_shape = 4});
  EXPECT_EQ(router.tile_stats().resident_tiles, 0u);

  router.link_weights(RouteAlg::kVlb, 0, 5);
  Router::TileStats st = router.tile_stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 0u);

  router.link_weights(RouteAlg::kVlb, 0, 5);
  st = router.tile_stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
}

}  // namespace
}  // namespace r2c2
