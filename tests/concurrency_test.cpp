// Cross-cutting robustness: Router's lock-free weight tables under
// concurrent access (the Maze emulator queries them from every node
// thread; the GA and bench sweeps from every pool lane), simulator
// determinism, and R2C2 running atop a small switched Clos (Section 6).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/thread_pool.h"
#include "routing/routing.h"
#include "sim/r2c2_sim.h"
#include "topology/topology.h"

namespace r2c2 {
namespace {

TEST(Concurrency, RouterCacheIsThreadSafe) {
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < 2000; ++i) {
        const NodeId s = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
        NodeId d;
        do {
          d = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
        } while (d == s);
        const auto alg = static_cast<RouteAlg>(rng.uniform_int(4));
        const LinkWeights& w = router.link_weights(alg, s, d);
        double total_out = 0.0;
        for (const LinkFraction& lf : w) {
          if (topo.link(lf.link).from == s) total_out += lf.fraction;
        }
        // Weights must always be complete and consistent, never a torn
        // half-computed entry.
        if (w.empty() || total_out <= 0.0) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
}

TEST(Concurrency, ConcurrentReadersSeeSameCachedEntry) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  std::vector<const LinkWeights*> seen(8, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] { seen[static_cast<std::size_t>(t)] =
                                      &router.link_weights(RouteAlg::kRps, 1, 14); });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < 8; ++t) EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
}

TEST(Concurrency, WarmTablesServeStableReferences) {
  // After precompute, link_weights is a pure table read: the reference a
  // thread saw before the concurrent phase must still be the entry every
  // thread sees during it (entries are published once, never replaced).
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  ThreadPool pool(3);
  router.precompute(RouteAlg::kRps, &pool);
  router.precompute(RouteAlg::kDor, &pool);

  const LinkWeights* before = &router.link_weights(RouteAlg::kRps, 3, 60);
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4000; ++i) {
        if (&router.link_weights(RouteAlg::kRps, 3, 60) != before) mismatch.store(true);
        const auto alg = (i % 2 == 0) ? RouteAlg::kRps : RouteAlg::kDor;
        const NodeId s = static_cast<NodeId>(i % topo.num_nodes());
        const NodeId d = static_cast<NodeId>((i * 7 + 1) % topo.num_nodes());
        const LinkWeights& w = router.link_weights(alg, s, d);
        if (s != d && w.empty()) mismatch.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(Concurrency, ConcurrentPathWalksAreSelfConsistent) {
  // pick_path_into from many threads at once (per-thread rng and output
  // buffer, thread-local walk scratch): every returned path must be a
  // valid src -> dst walk over existing links. Covers the kEcmp
  // thread-local weight buffer too.
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  std::atomic<bool> bad{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x9000u + static_cast<std::uint64_t>(t));
      Path path;
      for (int i = 0; i < 3000; ++i) {
        const NodeId s = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
        NodeId d;
        do {
          d = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
        } while (d == s);
        const auto alg = static_cast<RouteAlg>(rng.uniform_int(kNumRouteAlgs));
        router.pick_path_into(alg, s, d, rng, path, static_cast<FlowId>(i));
        if (path.front() != s || path.back() != d) bad.store(true);
        for (std::size_t h = 0; h + 1 < path.size(); ++h) {
          if (topo.find_link(path[h], path[h + 1]) == kInvalidLink) bad.store(true);
        }
        const LinkWeights& w = router.link_weights(RouteAlg::kEcmp, s, d, static_cast<FlowId>(i));
        if (w.empty()) bad.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(bad.load());
}

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 120;
  wl.mean_interarrival = 2 * kNsPerUs;
  const auto flows = generate_poisson_uniform(wl);
  const auto run = [&] {
    sim::R2c2Sim sim(topo, router, {});
    sim.add_flows(flows);
    return sim.run();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].completed, b.flows[i].completed) << i;
    EXPECT_EQ(a.flows[i].max_reorder_pkts, b.flows[i].max_reorder_pkts) << i;
  }
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.control_bytes_on_wire, b.control_bytes_on_wire);
}

TEST(SwitchedRack, R2c2RunsAtopSmallClos) {
  // Section 6: "it is the scale of rack-scale computers, not the topology,
  // that makes broadcasting efficient". A small folded Clos keeps every
  // switch degree within the 3-bit port encoding, so the full stack —
  // broadcast, rate computation, source routing — runs unchanged.
  const Topology topo = make_folded_clos({.servers_per_leaf = 4,
                                          .num_leaves = 4,
                                          .num_spines = 2,
                                          .bandwidth = 10 * kGbps,
                                          .latency = 100});
  ASSERT_LE(topo.max_degree(), 8);
  const Router router(topo);
  sim::R2c2Sim sim(topo, router, {});
  WorkloadConfig wl;
  wl.num_nodes = 16;  // servers only; switches do not source flows
  wl.num_flows = 60;
  wl.mean_interarrival = 5 * kNsPerUs;
  wl.max_bytes = 128 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const auto m = sim.run();
  for (const auto& f : m.flows) EXPECT_TRUE(f.finished()) << f.id;
  EXPECT_EQ(m.drops, 0u);
}

TEST(SwitchedRack, NoPathDiversityMeansNoReordering) {
  // A two-level Clos has a single path between servers under different
  // leaves through a given spine — spraying across the 2 spines is the
  // only diversity, and flows under the same leaf have exactly one path.
  const Topology topo = make_folded_clos({.servers_per_leaf = 4,
                                          .num_leaves = 4,
                                          .num_spines = 2,
                                          .bandwidth = 10 * kGbps,
                                          .latency = 100});
  const Router router(topo);
  sim::R2c2Sim sim(topo, router, {});
  FlowArrival f;
  f.src = 0;
  f.dst = 1;  // same leaf: one 2-hop path
  f.bytes = 1 << 20;
  sim.add_flows({f});
  const auto m = sim.run();
  ASSERT_TRUE(m.flows[0].finished());
  EXPECT_EQ(m.flows[0].max_reorder_pkts, 0u);
  EXPECT_LE(m.flows[0].throughput_bps(), 9.6e9);  // single path caps at line rate
}

}  // namespace
}  // namespace r2c2
