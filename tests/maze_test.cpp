#include <gtest/gtest.h>

#include "maze/maze.h"

namespace r2c2::maze {
namespace {

// Maze runs against the host's real clock; keep emulated link rates low so
// a single-core CI box can sustain them (see the header's fidelity note).

TEST(Maze, SingleFlowDelivers) {
  const Topology topo = make_torus({2, 2}, kGbps, 100);
  MazeConfig cfg;
  cfg.link_bandwidth = 200 * kMbps;
  MazeRack rack(topo, cfg);
  rack.start();
  rack.start_flow(0, 3, 64 * 1024);
  ASSERT_TRUE(rack.wait_all(5 * kNsPerSec));
  rack.stop();
  const auto results = rack.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].finished());
  EXPECT_GT(results[0].throughput_bps, 0.0);
  EXPECT_GT(rack.data_bytes(), 64u * 1024);  // payload + headers, >= 2 hops
}

TEST(Maze, ControlTrafficMatchesBroadcastCost) {
  const Topology topo = make_torus({2, 2}, kGbps, 100);
  MazeConfig cfg;
  cfg.link_bandwidth = 200 * kMbps;
  MazeRack rack(topo, cfg);
  rack.start();
  rack.start_flow(0, 3, 16 * 1024);
  ASSERT_TRUE(rack.wait_all(5 * kNsPerSec));
  rack.stop();
  // Two broadcasts (start + finish) x (n-1 = 3) copies x 16 B. Demand
  // updates would add more; a short network-limited flow emits none.
  EXPECT_EQ(rack.control_bytes(), 2u * 3 * 16);
}

TEST(Maze, ConcurrentFlowsAllComplete) {
  const Topology topo = make_torus({4, 4}, kGbps, 100);
  MazeConfig cfg;
  cfg.link_bandwidth = 100 * kMbps;
  MazeRack rack(topo, cfg);
  rack.start();
  Rng rng(3);
  for (int i = 0; i < 24; ++i) {
    const NodeId src = static_cast<NodeId>(rng.uniform_int(16));
    NodeId dst;
    do {
      dst = static_cast<NodeId>(rng.uniform_int(16));
    } while (dst == src);
    rack.start_flow(src, dst, 16 * 1024 + rng.uniform_int(32 * 1024));
  }
  ASSERT_TRUE(rack.wait_all(20 * kNsPerSec));
  rack.stop();
  for (const auto& r : rack.results()) {
    EXPECT_TRUE(r.finished()) << "flow " << r.id;
  }
}

TEST(Maze, FairSharingBetweenCompetingFlows) {
  // Two long flows crossing the same ring link: throughputs within 2x.
  const Topology topo = make_torus({4}, kGbps, 100);
  MazeConfig cfg;
  cfg.link_bandwidth = 200 * kMbps;
  cfg.recompute_interval = kNsPerMs;
  MazeRack rack(topo, cfg);
  rack.start();
  rack.start_flow(0, 2, 256 * 1024, {.alg = RouteAlg::kDor});
  rack.start_flow(1, 3, 256 * 1024, {.alg = RouteAlg::kDor});
  ASSERT_TRUE(rack.wait_all(30 * kNsPerSec));
  rack.stop();
  const auto results = rack.results();
  ASSERT_EQ(results.size(), 2u);
  const double ratio = results[0].throughput_bps / results[1].throughput_bps;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Maze, RingOccupancyTracked) {
  const Topology topo = make_torus({2, 2}, kGbps, 100);
  MazeConfig cfg;
  cfg.link_bandwidth = 200 * kMbps;
  MazeRack rack(topo, cfg);
  rack.start();
  rack.start_flow(0, 3, 64 * 1024);
  ASSERT_TRUE(rack.wait_all(5 * kNsPerSec));
  rack.stop();
  const auto occupancy = rack.max_ring_occupancy();
  EXPECT_EQ(occupancy.size(), topo.num_links());
  std::uint64_t total = 0;
  for (const auto b : occupancy) total += b;
  EXPECT_GT(total, 0u);
}

TEST(Maze, StopIsIdempotentAndRestartSafe) {
  const Topology topo = make_torus({2, 2}, kGbps, 100);
  MazeConfig cfg;
  cfg.link_bandwidth = 200 * kMbps;
  MazeRack rack(topo, cfg);
  rack.start();
  rack.start();  // no-op
  rack.stop();
  rack.stop();  // no-op
}

}  // namespace
}  // namespace r2c2::maze
