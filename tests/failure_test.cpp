// Failure handling (Section 3.2): "To detect link and node failures, we
// rely on a topology discovery mechanism... Upon detecting a failure,
// nodes broadcast information about all their ongoing flows."
//
// These tests cover the recovery pipeline: degrade the topology, rebuild
// router + broadcast trees, re-point the stacks, re-announce flows, and
// verify the control plane reconverges and the data plane still delivers.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "broadcast/broadcast.h"
#include "r2c2/stack.h"
#include "sim/r2c2_sim.h"
#include "topology/topology.h"

namespace r2c2 {
namespace {

TEST(Degraded, RemovesBothDirections) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const LinkId failed = topo.find_link(0, 1);
  const Topology degraded = make_degraded(topo, std::span<const LinkId>(&failed, 1));
  EXPECT_EQ(degraded.num_links(), topo.num_links() - 2);
  EXPECT_EQ(degraded.find_link(0, 1), kInvalidLink);
  EXPECT_EQ(degraded.find_link(1, 0), kInvalidLink);
  EXPECT_EQ(degraded.num_nodes(), topo.num_nodes());
}

TEST(Degraded, DistancesRerouteAroundFailure) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const LinkId failed = topo.find_link(0, 1);
  const Topology degraded = make_degraded(topo, std::span<const LinkId>(&failed, 1));
  EXPECT_EQ(topo.distance(0, 1), 1);
  EXPECT_EQ(degraded.distance(0, 1), 3);  // around a corner (parity: no 2-hop detour on a grid)
  // Everything still reachable (finalize would have thrown otherwise).
  for (NodeId a = 0; a < degraded.num_nodes(); ++a) {
    for (NodeId b = 0; b < degraded.num_nodes(); ++b) {
      EXPECT_LT(degraded.distance(a, b), 0xffff);
    }
  }
}

TEST(Degraded, DisconnectionIsRejected) {
  // Cutting all four cables of a 1D ring node disconnects it.
  const Topology topo = make_torus({8}, kGbps, 100);
  std::vector<LinkId> cut{topo.find_link(0, 1), topo.find_link(0, 7)};
  EXPECT_THROW(make_degraded(topo, cut), std::logic_error);
}

TEST(FailNode, RemovesAllIncidentLinksOnTorus) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const NodeId victim = 5;
  const std::size_t degree = topo.out_links(victim).size();
  const Topology degraded = fail_node(topo, victim);
  // Every incident cable vanishes in both directions.
  EXPECT_EQ(degraded.num_links(), topo.num_links() - 2 * degree);
  EXPECT_TRUE(degraded.out_links(victim).empty());
  EXPECT_TRUE(degraded.node_failed(victim));
  ASSERT_EQ(degraded.failed_nodes().size(), 1u);
  EXPECT_EQ(degraded.failed_nodes()[0], victim);
  // Node numbering is preserved: survivors keep their ids, and routing
  // among them still works everywhere.
  EXPECT_EQ(degraded.num_nodes(), topo.num_nodes());
  for (NodeId a = 0; a < degraded.num_nodes(); ++a) {
    for (NodeId b = 0; b < degraded.num_nodes(); ++b) {
      if (a == victim || b == victim || a == b) continue;
      EXPECT_LT(degraded.distance(a, b), 0xffff) << a << "->" << b;
    }
  }
}

TEST(FailNode, SurvivorsRouteAroundFailedTorusNode) {
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Topology degraded = fail_node(topo, 21);
  const Router router(degraded);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    NodeId s, d;
    do {
      s = static_cast<NodeId>(rng.uniform_int(64));
    } while (s == 21);
    do {
      d = static_cast<NodeId>(rng.uniform_int(64));
    } while (d == s || d == 21);
    const Path p = router.pick_path(RouteAlg::kRps, s, d, rng);
    EXPECT_EQ(p.back(), d);
    for (const NodeId hop : p) EXPECT_NE(hop, 21);
  }
}

TEST(FailNode, WorksOnMeshBoundaryNode) {
  // A corner of a 2D mesh can fail without disconnecting anyone else.
  const Topology topo = make_mesh({3, 3}, 10 * kGbps, 100);
  const Topology degraded = fail_node(topo, 0);
  EXPECT_TRUE(degraded.node_failed(0));
  for (NodeId a = 1; a < degraded.num_nodes(); ++a) {
    for (NodeId b = 1; b < degraded.num_nodes(); ++b) {
      EXPECT_LT(degraded.distance(a, b), 0xffff);
    }
  }
}

TEST(FailNode, DisconnectingNodeFailureIsRejected) {
  // The interior node of a 1D mesh (a line) is a cut vertex: failing it
  // splits the survivors, which the rebuild must refuse.
  const Topology line = make_mesh({3}, kGbps, 100);
  EXPECT_THROW(fail_node(line, 1), std::logic_error);
  // Same for the articulation point of a 3x1x... style narrow mesh.
  const Topology strip = make_mesh({5}, kGbps, 100);
  EXPECT_THROW(fail_node(strip, 2), std::logic_error);
  // But a ring (1D torus) tolerates any single node failure.
  const Topology ring = make_torus({5}, kGbps, 100);
  EXPECT_NO_THROW(fail_node(ring, 2));
}

TEST(FailNode, CombinedLinkAndNodeFailures) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const std::vector<LinkId> cut{topo.find_link(0, 1)};
  const std::vector<NodeId> dead{static_cast<NodeId>(10)};
  const Topology degraded = make_degraded(topo, cut, dead);
  EXPECT_EQ(degraded.find_link(0, 1), kInvalidLink);
  EXPECT_EQ(degraded.find_link(1, 0), kInvalidLink);
  EXPECT_TRUE(degraded.out_links(10).empty());
  EXPECT_TRUE(degraded.node_failed(10));
  EXPECT_FALSE(degraded.node_failed(0));
}

TEST(Degraded, RoutingFallsBackAndStaysValid) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  std::vector<LinkId> failed{topo.find_link(0, 1), topo.find_link(5, 6)};
  const Topology degraded = make_degraded(topo, failed);
  const Router router(degraded);
  Rng rng(3);
  for (const RouteAlg alg : {RouteAlg::kRps, RouteAlg::kDor, RouteAlg::kVlb, RouteAlg::kWlb}) {
    for (int i = 0; i < 50; ++i) {
      const NodeId s = static_cast<NodeId>(rng.uniform_int(16));
      NodeId d;
      do {
        d = static_cast<NodeId>(rng.uniform_int(16));
      } while (d == s);
      const Path p = router.pick_path(alg, s, d, rng);
      EXPECT_EQ(p.back(), d);
      for (std::size_t h = 0; h + 1 < p.size(); ++h) {
        EXPECT_NE(degraded.find_link(p[h], p[h + 1]), kInvalidLink) << to_string(alg);
      }
    }
  }
}

TEST(Degraded, BroadcastTreesAvoidFailedLinks) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  const LinkId failed = topo.find_link(0, 1);
  const Topology degraded = make_degraded(topo, std::span<const LinkId>(&failed, 1));
  const BroadcastTrees trees(degraded, 2);
  for (NodeId src = 0; src < degraded.num_nodes(); ++src) {
    for (int t = 0; t < 2; ++t) {
      std::size_t covered = 1;
      std::vector<NodeId> stack{src};
      while (!stack.empty()) {
        const NodeId at = stack.back();
        stack.pop_back();
        for (const NodeId child : trees.children(at, src, t)) {
          EXPECT_NE(degraded.find_link(at, child), kInvalidLink);
          ++covered;
          stack.push_back(child);
        }
      }
      EXPECT_EQ(covered, degraded.num_nodes());
    }
  }
}

TEST(Degraded, SimulationDeliversOverDegradedRack) {
  const Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  Rng rng(11);
  std::vector<LinkId> failed{random_link(topo, rng)};
  const Topology degraded = make_degraded(topo, failed);
  const Router router(degraded);
  sim::R2c2Sim sim(degraded, router, {});
  WorkloadConfig wl;
  wl.num_nodes = degraded.num_nodes();
  wl.num_flows = 80;
  wl.mean_interarrival = 5 * kNsPerUs;
  wl.max_bytes = 128 * 1024;
  sim.add_flows(generate_poisson_uniform(wl));
  const sim::RunMetrics m = sim.run();
  for (const auto& f : m.flows) EXPECT_TRUE(f.finished()) << f.id;
}

// Stack-level recovery: after a failure, hosts rebuild the shared context
// and stacks re-announce their flows over the new trees.
TEST(FailureRecovery, StacksReconvergeAfterRebuild) {
  Topology topo = make_torus({4, 4}, 10 * kGbps, 100);
  auto router = std::make_unique<Router>(topo);
  auto trees = std::make_unique<BroadcastTrees>(topo, 2);
  RackContext ctx;
  ctx.topo = &topo;
  ctx.router = router.get();
  ctx.trees = trees.get();

  std::deque<std::pair<NodeId, std::vector<std::uint8_t>>> wire;
  std::vector<std::unique_ptr<R2c2Stack>> stacks;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    R2c2Stack::Callbacks cb;
    cb.send_control = [&wire](NodeId next, std::vector<std::uint8_t> bytes) {
      wire.emplace_back(next, std::move(bytes));
    };
    stacks.push_back(std::make_unique<R2c2Stack>(n, ctx, std::move(cb)));
  }
  const auto pump = [&] {
    while (!wire.empty()) {
      auto [node, bytes] = std::move(wire.front());
      wire.pop_front();
      stacks[node]->on_control_packet(bytes);
    }
  };

  const FlowId f1 = stacks[0]->open_flow(10);
  const FlowId f2 = stacks[3]->open_flow(12);
  pump();
  for (const auto& s : stacks) ASSERT_EQ(s->view().size(), 2u);

  // A cable fails. The discovery mechanism rebuilds the shared structures;
  // stacks drop nothing (their tables persist) and re-announce their flows.
  const LinkId failed = topo.find_link(0, 1);
  const Topology degraded = make_degraded(topo, std::span<const LinkId>(&failed, 1));
  auto new_router = std::make_unique<Router>(degraded);
  auto new_trees = std::make_unique<BroadcastTrees>(degraded, 2);
  RackContext new_ctx;
  new_ctx.topo = &degraded;
  new_ctx.router = new_router.get();
  new_ctx.trees = new_trees.get();
  int announced = 0;
  for (auto& s : stacks) {
    s->update_context(new_ctx);
    announced += s->rebroadcast_local_flows();
  }
  EXPECT_EQ(announced, 2);
  pump();

  // Every node still sees both flows, and the views agree.
  const std::uint64_t h = stacks[0]->view().view_hash();
  for (const auto& s : stacks) {
    EXPECT_EQ(s->view().size(), 2u);
    EXPECT_EQ(s->view().view_hash(), h);
  }
  // Routes picked after the failure avoid the dead cable.
  for (int i = 0; i < 30; ++i) {
    const RouteCode route = stacks[0]->pick_route(f1);
    NodeId at = 0;
    for (int hop = 0; hop < route.length(); ++hop) {
      const LinkId l = degraded.out_link_by_port(at, route.port_at(hop));
      at = degraded.link(l).to;
    }
    EXPECT_EQ(at, 10);
  }
  (void)f2;
}

}  // namespace
}  // namespace r2c2
