// Observability demo: run a fault-injection simulation with the flight
// recorder and metrics registry attached, then export everything an
// operator would want after an incident:
//
//   r2c2_trace.json    Chrome trace-event timeline — open it in
//                      chrome://tracing or https://ui.perfetto.dev and see
//                      flow lifecycles, rate-recompute spans, the cable
//                      cut, its detection, and the context rebuild, one
//                      row per rack node.
//   r2c2_metrics.json  machine-readable registry snapshot.
//
// plus the registry rendered as a table on stdout.
//
//   $ ./observability_demo [trace.json [metrics.json]]
#include <cstdio>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "sim/fault.h"
#include "sim/r2c2_sim.h"
#include "topology/topology.h"
#include "workload/generator.h"

#include <iostream>

using namespace r2c2;

int main(int argc, char** argv) {
  const char* trace_path = argc > 1 ? argv[1] : "r2c2_trace.json";
  const char* metrics_path = argc > 2 ? argv[2] : "r2c2_metrics.json";

  // A 4x4 torus with a mid-run cable cut, healed by the control plane.
  const Topology topo = make_torus({4, 4}, 10 * kGbps, /*latency_ns=*/100);
  const Router router(topo);

  obs::FlightRecorder recorder;  // 64K-event ring, allocation-free recording
  obs::MetricsRegistry registry;

  sim::R2c2SimConfig cfg;
  cfg.trace = &recorder;
  cfg.metrics = &registry;
  cfg.reliable = true;
  cfg.keepalive_interval = 10 * kNsPerUs;
  cfg.lease_interval = 100 * kNsPerUs;
  cfg.rto = 200 * kNsPerUs;
  const LinkId victim = topo.find_link(0, 1);
  cfg.faults.events.push_back(sim::FaultScript::fail_link(150 * kNsPerUs, victim));
  cfg.faults.events.push_back(sim::FaultScript::restore_link(800 * kNsPerUs, victim));

  WorkloadConfig wl;
  wl.num_nodes = topo.num_nodes();
  wl.num_flows = 80;
  wl.mean_interarrival = 5 * kNsPerUs;
  wl.max_bytes = 96 * 1024;
  wl.seed = 11;

  sim::R2c2Sim simulator(topo, router, cfg);
  simulator.add_flows(generate_poisson_uniform(wl));
  const sim::RunMetrics m = simulator.run();

  std::size_t finished = 0;
  for (const auto& f : m.flows) finished += f.finished() ? 1 : 0;
  std::printf("simulated %zu flows (%zu finished) over %.1f us of rack time\n", m.flows.size(),
              finished, static_cast<double>(m.sim_end) / 1e3);
  std::printf("faults: %llu injected, %llu detected, %llu context rebuilds\n",
              static_cast<unsigned long long>(m.failures_injected + m.restores_injected),
              static_cast<unsigned long long>(m.failures_detected + m.restores_detected),
              static_cast<unsigned long long>(m.context_rebuilds));
  std::printf("recorded %llu trace events (%llu lost to ring wraparound)\n\n",
              static_cast<unsigned long long>(recorder.total_recorded()),
              static_cast<unsigned long long>(recorder.overwritten()));

  registry.print(std::cout);

  if (!obs::write_chrome_trace(recorder, trace_path)) {
    std::fprintf(stderr, "cannot write %s\n", trace_path);
    return 1;
  }
  if (!registry.write_json(metrics_path)) {
    std::fprintf(stderr, "cannot write %s\n", metrics_path);
    return 1;
  }
  std::printf("\nwrote %s — load it in chrome://tracing or https://ui.perfetto.dev\n", trace_path);
  std::printf("wrote %s\n", metrics_path);
  return 0;
}
