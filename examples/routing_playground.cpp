// Routing playground: compare the four routing protocols across classic
// traffic patterns on a configurable torus — an interactive version of the
// paper's Fig. 2 discussion ("no single routing algorithm can achieve
// optimal throughput across all workloads").
//
//   $ ./routing_playground [k] [n]     # k-ary n-cube, default 8-ary 2-cube
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "congestion/waterfill.h"
#include "workload/patterns.h"

using namespace r2c2;

namespace {

// Saturation throughput of `pairs` under `alg`, normalized to network
// capacity (2 * bisection / N, the standard Dally-Towles normalization).
double normalized_throughput(const Router& router, RouteAlg alg,
                             const std::vector<std::pair<NodeId, NodeId>>& pairs) {
  const Topology& topo = router.topology();
  std::vector<FlowSpec> flows;
  FlowId id = 1;
  for (const auto& [s, d] : pairs) {
    flows.push_back({id++, s, d, alg, 1.0, 0, kUnlimitedDemand});
  }
  const Bps per_flow = saturation_rate(router, flows);
  // Per-node injection rate: flows are spread over sources; count per-source.
  std::vector<int> flows_per_node(topo.num_nodes(), 0);
  for (const auto& [s, d] : pairs) ++flows_per_node[s];
  double max_injection = 0.0;
  for (const int f : flows_per_node) max_injection = std::max(max_injection, f * per_flow);
  const double capacity = 2.0 * topo.bisection_capacity() / static_cast<double>(topo.num_nodes());
  return max_injection / capacity;
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 8;
  const int n = argc > 2 ? std::atoi(argv[2]) : 2;
  std::vector<int> dims(static_cast<std::size_t>(n), k);
  const Topology topo = make_torus(dims, 10 * kGbps, 100);
  const Router router(topo);
  std::printf("topology: %s (%zu nodes), bisection %.0f Gbps, capacity %.2f Gbps/node\n\n",
              topo.name().c_str(), topo.num_nodes(), topo.bisection_capacity() / 1e9,
              2.0 * topo.bisection_capacity() / static_cast<double>(topo.num_nodes()) / 1e9);

  const RouteAlg algs[] = {RouteAlg::kRps, RouteAlg::kDor, RouteAlg::kVlb, RouteAlg::kWlb};
  Table table({"pattern", "RPS", "DOR", "VLB", "WLB", "winner"});
  const TrafficPattern patterns[] = {TrafficPattern::kNearestNeighbor, TrafficPattern::kUniform,
                                     TrafficPattern::kBitComplement, TrafficPattern::kTranspose,
                                     TrafficPattern::kTornado};
  for (const TrafficPattern pattern : patterns) {
    std::vector<std::pair<NodeId, NodeId>> pairs;
    try {
      pairs = pattern_pairs(topo, pattern);
    } catch (const std::exception& e) {
      std::printf("skipping %s: %s\n", std::string(to_string(pattern)).c_str(), e.what());
      continue;
    }
    double best = 0.0;
    RouteAlg best_alg = RouteAlg::kRps;
    double tput[4];
    for (int i = 0; i < 4; ++i) {
      tput[i] = normalized_throughput(router, algs[i], pairs);
      if (tput[i] > best) {
        best = tput[i];
        best_alg = algs[i];
      }
    }
    table.add_row(to_string(pattern), tput[0], tput[1], tput[2], tput[3], to_string(best_alg));
  }
  table.print(std::cout);
  std::printf("\nNote the pattern: minimal routing (RPS/DOR) wins under locality, VLB's\n"
              "guaranteed 0.5 wins on adversarial patterns — hence R2C2's per-flow\n"
              "routing selection (Section 3.4).\n");
  return 0;
}
