// Partition/aggregate on the Maze emulator: the fan-in pattern behind
// user-facing datacenter services (the latency-sensitive traffic the
// paper's goal G3 protects).
//
// An aggregator node fans a query out to worker nodes; every worker
// responds with a shard of the result; the query completes when all shards
// arrive. A concurrent bulk transfer shares the rack. R2C2's rate-based
// control keeps the fan-in responses from queuing behind the bulk flow.
//
//   $ ./partition_aggregate
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "maze/maze.h"

using namespace r2c2;
using namespace r2c2::maze;

int main() {
  const Topology topo = make_torus({4, 4}, kGbps, 100);
  MazeConfig cfg;
  cfg.link_bandwidth = 100 * kMbps;  // emulated virtual links (host-paced)
  cfg.recompute_interval = 2 * kNsPerMs;
  MazeRack rack(topo, cfg);
  rack.start();

  const NodeId aggregator = 5;
  const std::vector<NodeId> workers{0, 2, 7, 8, 10, 13, 15};
  const std::uint64_t shard_bytes = 24 * 1024;

  std::printf("rack: %s, aggregator node %u, %zu workers, %llu-byte shards\n",
              topo.name().c_str(), aggregator, workers.size(),
              static_cast<unsigned long long>(shard_bytes));

  // Background bulk transfer crossing the rack (lower priority).
  rack.start_flow(1, 14, 2 << 20, {.alg = RouteAlg::kRps, .priority = 1});

  // Three rounds of partition/aggregate queries (high priority).
  std::vector<double> query_ms;
  for (int round = 0; round < 3; ++round) {
    std::vector<FlowId> shard_flows;
    const auto t0 = std::chrono::steady_clock::now();
    for (const NodeId w : workers) {
      shard_flows.push_back(
          rack.start_flow(w, aggregator, shard_bytes, {.alg = RouteAlg::kRps, .priority = 0}));
    }
    // Wait for this round's shards (poll the result set).
    for (;;) {
      bool done = true;
      for (const auto& r : rack.results()) {
        for (const FlowId f : shard_flows) done &= (r.id != f || r.finished());
      }
      if (done) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    query_ms.push_back(ms);
    std::printf("query round %d: all %zu shards aggregated in %.2f ms\n", round, workers.size(),
                ms);
  }

  rack.wait_all(30 * kNsPerSec);
  rack.stop();

  double worst_shard_tput = 1e18;
  double bulk_tput = 0.0;
  for (const auto& r : rack.results()) {
    if (r.bytes == shard_bytes) {
      worst_shard_tput = std::min(worst_shard_tput, r.throughput_bps);
    } else {
      bulk_tput = r.throughput_bps;
    }
  }
  std::printf("\nslowest shard sustained %.1f Mbps; background bulk flow got %.1f Mbps\n",
              worst_shard_tput / 1e6, bulk_tput / 1e6);
  std::printf("median query latency: %.2f ms\n", percentile(query_ms, 50));
  std::printf("\nhigh-priority fan-in shards preempt the bulk flow at every shared link\n"
              "(strict priority in the rate computation) — no in-network QoS needed.\n");
  return 0;
}
