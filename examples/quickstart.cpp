// Quickstart: assemble a rack, run the R2C2 control plane, and watch rate
// allocations respond to flow arrivals and departures.
//
// This uses the public API directly (topology -> router -> broadcast trees
// -> per-node R2c2Stack) with an in-memory control channel, the same wiring
// a host platform (e.g. the Maze emulator) provides.
//
//   $ ./quickstart
#include <cstdio>
#include <deque>
#include <memory>
#include <vector>

#include "r2c2/stack.h"

using namespace r2c2;

int main() {
  // 1. A 4x4x4 torus of 10 Gbps links — a 64-node rack-scale computer.
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, /*latency_ns=*/100);
  const Router router(topo);
  const BroadcastTrees trees(topo, /*trees_per_source=*/2);
  std::printf("rack: %s, %zu nodes, %zu directed links, diameter %d hops\n",
              topo.name().c_str(), topo.num_nodes(), topo.num_links(), topo.diameter());
  std::printf("one flow-event broadcast costs %zu bytes on the wire\n\n",
              trees.bytes_per_broadcast());

  RackContext ctx;
  ctx.topo = &topo;
  ctx.router = &router;
  ctx.trees = &trees;
  ctx.alloc.headroom = 0.05;

  // 2. One stack per node; control packets go through an in-memory queue.
  std::deque<std::pair<NodeId, std::vector<std::uint8_t>>> wire;
  std::vector<std::unique_ptr<R2c2Stack>> stacks;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    R2c2Stack::Callbacks cb;
    cb.send_control = [&wire](NodeId next, std::vector<std::uint8_t> bytes) {
      wire.emplace_back(next, std::move(bytes));
    };
    cb.set_rate = [n](FlowId flow, Bps rate) {
      std::printf("  node %2u: flow %08x rate-limited to %6.2f Gbps\n", n, flow, rate / 1e9);
    };
    stacks.push_back(std::make_unique<R2c2Stack>(n, ctx, std::move(cb)));
  }
  const auto pump = [&wire, &stacks] {
    while (!wire.empty()) {
      auto [node, bytes] = std::move(wire.front());
      wire.pop_front();
      stacks[node]->on_control_packet(bytes);
    }
  };
  const auto recompute_all = [&stacks] {
    for (auto& s : stacks) s->recompute();
  };

  // 3. Start a flow: the sender broadcasts the event and self-assigns a
  //    fair rate before anyone else reacts.
  std::printf("node 0 opens a packet-spraying flow to node 42:\n");
  const FlowId f1 = stacks[0]->open_flow(42, {.alg = RouteAlg::kRps});
  pump();

  // 4. A competing flow from the opposite corner.
  std::printf("\nnode 21 opens a competing flow to node 42:\n");
  const FlowId f2 = stacks[21]->open_flow(42, {.alg = RouteAlg::kRps});
  pump();
  std::printf("\nafter the periodic recomputation (rho), every sender re-derives\n"
              "rates from its local copy of the global traffic matrix:\n");
  recompute_all();

  // 5. A high-priority deadline flow preempts its share.
  std::printf("\nnode 7 opens a high-priority flow to node 42:\n");
  const FlowId f3 = stacks[7]->open_flow(42, {.alg = RouteAlg::kDor, .priority = 0});
  stacks[0]->close_flow(f1);
  pump();
  recompute_all();

  // 6. Tear down.
  stacks[21]->close_flow(f2);
  stacks[7]->close_flow(f3);
  pump();
  std::printf("\nall flows closed; every node's view is empty: ");
  bool all_empty = true;
  for (const auto& s : stacks) all_empty &= s->view().empty();
  std::printf("%s\n", all_empty ? "yes" : "NO (bug!)");
  return all_empty ? 0 : 1;
}
