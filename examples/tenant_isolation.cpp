// Tenant isolation: map rich provider policies — per-tenant bandwidth
// shares and deadline-driven priorities — onto R2C2's two allocation
// primitives (weight, priority), as Section 3.3.2 describes.
//
// Scenario: a 64-node rack shared by three tenants.
//  - "batch"     : paid for 1 share, runs many bulk flows
//  - "analytics" : paid for 2 shares, runs a few bulk flows
//  - "serving"   : latency-critical, uses deadline priorities
//
//   $ ./tenant_isolation
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "congestion/policy.h"
#include "congestion/waterfill.h"
#include "topology/topology.h"

using namespace r2c2;

namespace {

struct TenantFlows {
  std::string tenant;
  std::vector<std::size_t> indices;  // into the flow vector
};

void report(const char* title, const Router& router, const std::vector<FlowSpec>& flows,
            const std::vector<TenantFlows>& tenants) {
  const auto alloc = waterfill(router, flows, {.headroom = 0.05});
  Table table({"tenant", "flows", "aggregate Gbps", "per-flow min", "per-flow max"});
  std::printf("%s\n", title);
  for (const auto& t : tenants) {
    double total = 0.0, lo = 1e18, hi = 0.0;
    for (const std::size_t i : t.indices) {
      total += alloc.rate[i];
      lo = std::min(lo, alloc.rate[i]);
      hi = std::max(hi, alloc.rate[i]);
    }
    table.add_row(t.tenant, t.indices.size(), total / 1e9, lo / 1e9, hi / 1e9);
  }
  table.print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  const Topology topo = make_torus({4, 4, 4}, 10 * kGbps, 100);
  const Router router(topo);
  Rng rng(7);
  const auto random_pair = [&](NodeId& s, NodeId& d) {
    s = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
    do {
      d = static_cast<NodeId>(rng.uniform_int(topo.num_nodes()));
    } while (d == s);
  };

  // Tenant "batch": 24 flows, 1 share. Tenant "analytics": 6 flows,
  // 2 shares. Per-tenant guarantees: each flow's weight is the tenant
  // share divided by its active flow count (policy.h).
  std::vector<FlowSpec> flows;
  std::vector<TenantFlows> tenants{{"batch", {}}, {"analytics", {}}, {"serving", {}}};
  FlowId id = 1;
  for (int i = 0; i < 24; ++i) {
    NodeId s, d;
    random_pair(s, d);
    tenants[0].indices.push_back(flows.size());
    flows.push_back({id++, s, d, RouteAlg::kRps, tenant_flow_weight(1.0, 24), 1, kUnlimitedDemand});
  }
  for (int i = 0; i < 6; ++i) {
    NodeId s, d;
    random_pair(s, d);
    tenants[1].indices.push_back(flows.size());
    flows.push_back({id++, s, d, RouteAlg::kRps, tenant_flow_weight(2.0, 6), 1, kUnlimitedDemand});
  }
  report("-- batch (1 share, 24 flows) vs analytics (2 shares, 6 flows) --", router, flows,
         {tenants[0], tenants[1]});
  std::printf("analytics gets ~2x batch's aggregate despite running 4x fewer flows;\n"
              "per-flow fairness alone would have given batch 4x more.\n\n");

  // Tenant "serving" arrives with deadline flows: imminent deadlines map
  // to stricter priorities than the bulk tenants' priority-1 class.
  for (const TimeNs slack : {200 * kNsPerUs, 5 * kNsPerMs, 50 * kNsPerMs}) {
    NodeId s, d;
    random_pair(s, d);
    tenants[2].indices.push_back(flows.size());
    flows.push_back({id++, s, d, RouteAlg::kDor, 1.0,
                     deadline_priority(slack, /*horizon=*/100 * kNsPerMs, /*levels=*/2),
                     kUnlimitedDemand});
    std::printf("serving flow with %.1f ms slack -> priority %d\n",
                static_cast<double>(slack) / 1e6,
                deadline_priority(slack, 100 * kNsPerMs, 2));
  }
  std::printf("\n");
  report("-- after the serving tenant's deadline flows arrive --", router, flows, tenants);
  std::printf("deadline flows preempt their links (strict priority rounds in the\n"
              "water-filler); the bulk tenants share what remains by weight.\n");
  return 0;
}
